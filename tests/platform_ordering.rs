//! Cross-crate invariants on the platform comparison (the qualitative
//! "who wins" shapes of Fig. 13 / Fig. 21 that any reproduction must
//! preserve).

use ndsearch::anns::hnsw::{Hnsw, HnswParams};
use ndsearch::anns::index::{GraphAnnsIndex, SearchParams};
use ndsearch::baselines::{
    CpuPlatform, DeepStorePlatform, GpuPlatform, Platform, PlatformReport, Scenario,
    SmartSsdPlatform,
};
use ndsearch::core::config::NdsConfig;
use ndsearch::core::engine::NdsEngine;
use ndsearch::core::pipeline::Prepared;
use ndsearch::vector::synthetic::{BenchmarkId, DatasetSpec};
use ndsearch::vector::DistanceKind;

struct Fixture {
    base: ndsearch::vector::Dataset,
    graph: ndsearch::graph::Csr,
    trace: ndsearch::anns::trace::BatchTrace,
    config: NdsConfig,
}

fn fixture(benchmark: BenchmarkId) -> Fixture {
    // Large enough that the dataset spans the scaled device and the batch
    // feeds the LUN-level parallelism (see NdsConfig::scaled_for).
    let spec = DatasetSpec::for_benchmark(benchmark, 4000, 512);
    let (base, queries) = spec.build_pair();
    let index = Hnsw::build(&base, HnswParams::default());
    let out = index.search_batch(
        &base,
        &queries,
        &SearchParams::new(10, 64, DistanceKind::L2),
    );
    let config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
    Fixture {
        base,
        graph: index.base_graph().clone(),
        trace: out.trace,
        config,
    }
}

fn reports(fx: &Fixture, benchmark: BenchmarkId) -> (Vec<PlatformReport>, u64) {
    let s = Scenario {
        benchmark,
        base: &fx.base,
        graph: &fx.graph,
        trace: &fx.trace,
        config: &fx.config,
        k: 10,
    };
    let baselines = vec![
        CpuPlatform::paper_default().report(&s),
        GpuPlatform::paper_default().report(&s),
        SmartSsdPlatform::paper_default().report(&s),
        DeepStorePlatform::channel_level().report(&s),
        DeepStorePlatform::chip_level().report(&s),
    ];
    let prepared = Prepared::stage(&fx.config, &fx.graph, &fx.base, &fx.trace);
    let nds = NdsEngine::new(&fx.config).run(&prepared);
    (baselines, nds.total_ns)
}

#[test]
fn billion_scale_ordering_matches_fig13() {
    let fx = fixture(BenchmarkId::Sift1B);
    let (reports, nds_ns) = reports(&fx, BenchmarkId::Sift1B);
    let by_name = |n: &str| {
        reports
            .iter()
            .find(|r| r.name == n)
            .unwrap_or_else(|| panic!("missing {n}"))
            .total_ns
    };
    // NDSEARCH fastest, then DS-cp, DS-c; everything in-storage beats CPU.
    assert!(nds_ns < by_name("DS-cp"), "NDSEARCH must beat DS-cp");
    assert!(by_name("DS-cp") < by_name("DS-c"), "DS-cp must beat DS-c");
    assert!(by_name("DS-c") < by_name("CPU"), "DS-c must beat CPU");
    assert!(
        by_name("SmartSSD") < by_name("CPU"),
        "SmartSSD must beat CPU"
    );
    assert!(by_name("GPU") < by_name("CPU"), "GPU must beat CPU");
    // And the headline: order-of-magnitude class advantage over CPU.
    let ratio = by_name("CPU") as f64 / nds_ns as f64;
    assert!(ratio > 5.0, "NDSEARCH vs CPU ratio {ratio} too small");
}

#[test]
fn small_datasets_keep_ndsearch_ahead_but_tighter() {
    // Fig. 13: on memory-resident glove-100/fashion-mnist the CPU/GPU no
    // longer pay SSD I/O, so NDSEARCH's margin narrows but persists.
    let fx = fixture(BenchmarkId::Glove100);
    let (reports, nds_ns) = reports(&fx, BenchmarkId::Glove100);
    let cpu = reports.iter().find(|r| r.name == "CPU").unwrap().total_ns;
    let big = fixture(BenchmarkId::Sift1B);
    let (big_reports, big_nds) = reports2(&big);
    let big_cpu = big_reports
        .iter()
        .find(|r| r.name == "CPU")
        .unwrap()
        .total_ns;
    let small_ratio = cpu as f64 / nds_ns as f64;
    let big_ratio = big_cpu as f64 / big_nds as f64;
    assert!(small_ratio > 1.0, "NDSEARCH must still win: {small_ratio}");
    assert!(
        big_ratio > small_ratio,
        "billion-scale advantage ({big_ratio:.1}x) must exceed small-set ({small_ratio:.1}x)"
    );
}

fn reports2(fx: &Fixture) -> (Vec<PlatformReport>, u64) {
    reports(fx, BenchmarkId::Sift1B)
}

#[test]
fn energy_efficiency_ordering() {
    use ndsearch::core::energy::PowerModel;
    let fx = fixture(BenchmarkId::Sift1B);
    let (reports, nds_ns) = reports(&fx, BenchmarkId::Sift1B);
    let power = PowerModel::default();
    let nds_qps = fx.trace.len() as f64 / (nds_ns as f64 / 1e9);
    let nds_eff = nds_qps / (power.ndsearch_total_w() + power.ssd_device_w);
    for r in &reports {
        assert!(
            nds_eff > r.qps_per_watt(),
            "NDSEARCH QPS/W must beat {} ({} vs {})",
            r.name,
            nds_eff,
            r.qps_per_watt()
        );
    }
    // Two-orders-of-magnitude class vs CPU (Fig. 20).
    let cpu = reports.iter().find(|r| r.name == "CPU").unwrap();
    assert!(
        nds_eff / cpu.qps_per_watt() > 20.0,
        "vs CPU efficiency ratio = {}",
        nds_eff / cpu.qps_per_watt()
    );
}
