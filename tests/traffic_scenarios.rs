//! The production-day battery: hours of simulated mixed traffic —
//! Zipfian multi-tenant queries, online inserts/deletes, a compaction,
//! an evening load spike and a replica kill — over a sharded replicated
//! cluster, gated on recall, SLO attainment, zero lost queries, write
//! amplification and bit-identical replay across thread counts; plus a
//! single-engine overload burst showing `ShedDoomed` improves the
//! survivors' on-time completion without silently dropping anything.

use std::collections::BTreeMap;

use ndsearch::anns::index::{GraphAnnsIndex, MutableIndex};
use ndsearch::anns::vamana::{Vamana, VamanaParams};
use ndsearch::core::cluster::{
    ClusterEngine, ClusterQueryRequest, FailureSchedule, ReplicationConfig,
};
use ndsearch::core::config::NdsConfig;
use ndsearch::core::deploy::CompactionReport;
use ndsearch::core::pipeline::Prepared;
use ndsearch::core::traffic::{
    ArrivalModel, EventKind, QueryMix, Scenario, TenantProfile, TrafficEvent,
};
use ndsearch::core::ClusterReport;
use ndsearch::flash::timing::Nanos;
use ndsearch::serve::{
    QueryRequest, ServeConfig, ServeEngine, ServeReport, SessionState, SloPolicy,
};
use ndsearch::vector::recall::{ground_truth, recall_at_k};
use ndsearch::vector::shard::{ShardPlan, ShardPolicy};
use ndsearch::vector::synthetic::DatasetSpec;
use ndsearch::vector::{Dataset, DistanceKind, VectorId};

const HOUR: Nanos = 3_600_000_000_000;
const N_BASE: usize = 600;

fn vamana_builder(ds: &Dataset) -> (Box<dyn MutableIndex>, VectorId) {
    let index = Vamana::build(ds, VamanaParams::default());
    let entry = index.medoid();
    (Box::new(index), entry)
}

fn is_terminal(s: SessionState) -> bool {
    matches!(
        s,
        SessionState::Completed | SessionState::Expired | SessionState::Rejected
    )
}

/// Splits the 700-row corpus into the staged base (rows `0..600`) and the
/// ingest pool (rows `600..700`) that the day's inserts draw from.
fn split(all: &Dataset) -> (Dataset, Dataset) {
    let mut base = Dataset::new(all.dim());
    let mut ingest = Dataset::new(all.dim());
    for (id, v) in all.iter() {
        if (id as usize) < N_BASE {
            base.try_push(v).unwrap();
        } else {
            ingest.try_push(v).unwrap();
        }
    }
    base.set_stored_vector_bytes(all.stored_vector_bytes());
    ingest.set_stored_vector_bytes(all.stored_vector_bytes());
    (base, ingest)
}

fn tenants() -> Vec<TenantProfile> {
    vec![
        // The latency-sensitive tenant: two thirds of the traffic, 20 ms
        // deadlines (unloaded cluster latency is ~3 ms), pure reads.
        TenantProfile::new(0).weight(2.0).deadline_ns(20_000_000),
        // The churn tenant: best-effort, half its events are updates,
        // smaller top-k.
        TenantProfile::new(1).update_fraction(0.5).k(5),
    ]
}

/// One full simulated production day over a 2-shard × 2-replica cluster,
/// at the given executor thread count. Returns the cumulative cluster
/// report, the midday compaction reports, and the generated trace events
/// (phase A then phase B, each in submission order).
fn run_day(exec_threads: usize) -> (ClusterReport, Vec<CompactionReport>, Vec<TrafficEvent>) {
    let (all, audit) = DatasetSpec::sift_scaled(N_BASE + 100, 24).build_pair();
    let (base, ingest) = split(&all);
    let mut config = NdsConfig::scaled_for(all.len(), all.stored_vector_bytes());
    config.ecc.hard_decision_failure_prob = 0.0;
    config.exec_threads = exec_threads;

    let plan = ShardPlan::partition(base.len(), 2, ShardPolicy::BalancedSize, 0x5A);
    // Shard 0's replica 0 dies 1 ms into the evening spike, with sessions
    // in flight on it.
    let kill_at = HOUR + 1_000_000;
    let replication =
        ReplicationConfig::replicated(2).with_failures(FailureSchedule::new().kill(kill_at, 0, 0));
    let serve = ServeConfig {
        k: 10,
        beam_width: 80,
        slo: SloPolicy::ShedDoomed { min_slack_ns: 0 },
        ..ServeConfig::default()
    };
    let mut cluster =
        ClusterEngine::stage_replicated(&config, serve, plan, replication, &base, vamana_builder);

    // ---- Phase A: the steady morning (~45 simulated minutes). ----
    let morning = Scenario {
        arrivals: ArrivalModel::Poisson { rate_qps: 0.05 },
        mix: QueryMix {
            zipf_theta: 0.9,
            delete_fraction: 0.4,
            tenants: tenants(),
        },
        events: 140,
        start_ns: 0,
        seed: 0xDA7,
    };
    let trace_a = morning.generate(audit.len(), ingest.len(), 0..120);
    trace_a.submit_cluster(&mut cluster, &audit, &ingest);
    cluster.run_to_completion();

    // ---- Midday maintenance: compact every live replica. ----
    let compactions = cluster.compact_all();

    // ---- Phase B: the evening — a 2 ms spike at hour 1, then tail. ----
    let evening = Scenario {
        arrivals: ArrivalModel::Bursty {
            base_rate_qps: 0.05,
            spike_rate_qps: 50_000.0,
            spike_windows: vec![(0, 2_000_000)],
        },
        mix: QueryMix {
            zipf_theta: 0.9,
            delete_fraction: 0.4,
            tenants: tenants(),
        },
        events: 180,
        start_ns: HOUR,
        seed: 0xE5E,
    };
    let trace_b = evening.generate(audit.len(), ingest.len(), 120..240);
    trace_b.submit_cluster(&mut cluster, &audit, &ingest);
    cluster.run_to_completion();

    // ---- Phase C: the closing audit — every benchmark query, no
    // deadline, after all churn has drained. ----
    for (i, (_, q)) in audit.iter().enumerate() {
        cluster.submit(ClusterQueryRequest::at(
            3 * HOUR + i as Nanos * 50_000,
            q.to_vec(),
        ));
    }
    let report = cluster.run_to_completion();

    let mut events = trace_a.events;
    events.extend(trace_b.events);
    (report, compactions, events)
}

/// Replays the day's completed updates over the staged base to recover
/// the live corpus: global id → vector, for the recall ground truth.
fn live_corpus(
    base: &Dataset,
    ingest: &Dataset,
    events: &[TrafficEvent],
    report: &ClusterReport,
) -> BTreeMap<VectorId, Vec<f32>> {
    let mut live: BTreeMap<VectorId, Vec<f32>> = (0..base.len() as VectorId)
        .map(|g| (g, base.vector(g).to_vec()))
        .collect();
    let mut u = 0;
    for e in events {
        match &e.kind {
            EventKind::Query { .. } => {}
            EventKind::Insert { pool_id } => {
                let o = &report.update_outcomes[u];
                u += 1;
                if o.state == SessionState::Completed {
                    let gid = o.assigned.expect("completed insert has a global id");
                    let prev = live.insert(gid, ingest.vector(*pool_id).to_vec());
                    assert!(prev.is_none(), "insert reused live global id {gid}");
                }
            }
            EventKind::Delete { id } => {
                let o = &report.update_outcomes[u];
                u += 1;
                if o.state == SessionState::Completed {
                    assert!(live.remove(id).is_some(), "deleted unknown id {id}");
                }
            }
        }
    }
    assert_eq!(u, report.update_outcomes.len(), "update accounting drifted");
    live
}

#[test]
fn production_day_survives_churn_spike_and_replica_loss() {
    let (all, audit) = DatasetSpec::sift_scaled(N_BASE + 100, 24).build_pair();
    let (base, ingest) = split(&all);
    let (report, compactions, events) = run_day(1);

    // -- Zero lost work: every event reached a terminal state. --
    let trace_queries = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Query { .. }))
        .count();
    assert_eq!(report.outcomes.len(), trace_queries + audit.len());
    assert_eq!(report.update_outcomes.len(), events.len() - trace_queries);
    for o in &report.outcomes {
        assert!(is_terminal(o.state), "query {} not terminal", o.id);
        if o.shed {
            assert_ne!(o.state, SessionState::Completed, "shed query completed");
        }
    }
    for o in &report.update_outcomes {
        assert!(is_terminal(o.state), "update {} not terminal", o.id);
    }
    assert_eq!(
        report.completed() + report.expired() + report.rejected(),
        report.outcomes.len()
    );

    // -- The day really spans hours of simulated time. --
    let last = report
        .outcomes
        .iter()
        .map(|o| o.completed_ns)
        .max()
        .unwrap();
    assert!(last > 3 * HOUR, "day ended at {last} ns");

    // -- SLO accounting: attainment in (0, 1], both tenants reported. --
    let attainment = report.slo_attainment();
    assert!(
        attainment > 0.0 && attainment <= 1.0,
        "attainment {attainment}"
    );
    let tenants = report.tenant_summaries();
    assert_eq!(
        tenants.iter().map(|t| t.tenant).collect::<Vec<_>>(),
        vec![0, 1]
    );
    assert_eq!(
        tenants.iter().map(|t| t.submitted).sum::<usize>(),
        report.outcomes.len()
    );
    assert!(report.tenant_p99_fairness() >= 1.0);

    // -- Writes were charged and compaction really ran on all 4 devices. --
    let totals = report.update_totals();
    assert!(totals.pages_programmed > 0, "no pages programmed");
    assert!(totals.write_amplification() > 0.0);
    assert_eq!(compactions.len(), 4, "one compaction per live replica");
    for c in &compactions {
        assert!(c.pages_programmed > 0 && c.duration_ns > 0);
    }

    // -- The kill landed: shard 0 lost replica 0 mid-spike and failed
    //    over; every other shard stayed whole. --
    let s0 = &report.shards[0];
    assert!(!s0.replicas[0].alive);
    assert_eq!(s0.replicas[0].killed_ns, Some(HOUR + 1_000_000));
    assert!(s0.replicas[1].alive);
    assert!(s0.availability < 1.0 && s0.availability > 0.0);
    assert!(
        report.failovers() > 0,
        "mid-spike kill must re-seed sessions"
    );
    assert_eq!(report.shards[1].availability, 1.0);

    // -- Closing audit: recall over the *live* corpus (base − completed
    //    deletes + completed inserts) at the 0.80 gate. --
    let live = live_corpus(&base, &ingest, &events, &report);
    let mut live_ids = Vec::with_capacity(live.len());
    let mut live_ds = Dataset::new(all.dim());
    for (gid, v) in &live {
        live_ids.push(*gid);
        live_ds.try_push(v).unwrap();
    }
    let gt = ground_truth(&live_ds, &audit, 10, DistanceKind::L2);
    let gt_gids: Vec<Vec<VectorId>> = gt
        .iter()
        .map(|row| row.iter().map(|&r| live_ids[r as usize]).collect())
        .collect();
    let audit_outcomes = &report.outcomes[report.outcomes.len() - audit.len()..];
    for o in audit_outcomes {
        assert_eq!(
            o.state,
            SessionState::Completed,
            "audit query {} lost",
            o.id
        );
        for n in &o.results {
            assert!(
                live.contains_key(&n.id),
                "audit query {} surfaced dead id {}",
                o.id,
                n.id
            );
        }
    }
    let merged: Vec<Vec<VectorId>> = audit_outcomes
        .iter()
        .map(|o| o.results.iter().map(|n| n.id).collect())
        .collect();
    let recall = recall_at_k(&gt_gids, &merged, 10);
    assert!(recall >= 0.80, "post-churn recall {recall} below 0.80");
}

#[test]
fn production_day_is_bit_identical_across_reruns_and_thread_counts() {
    let (r1, c1, e1) = run_day(1);
    let (r2, c2, e2) = run_day(1);
    assert_eq!(e1, e2, "trace generation must replay bit-identically");
    assert_eq!(r1, r2, "same-thread rerun diverged");
    assert_eq!(c1, c2);
    let (r4, c4, e4) = run_day(4);
    assert_eq!(e1, e4);
    assert_eq!(r1, r4, "exec_threads=4 changed the day's report");
    assert_eq!(c1, c4);
}

// ---------------------------------------------------------------------
// Single-engine overload burst: ShedDoomed on vs off.
// ---------------------------------------------------------------------

struct Overload {
    config: NdsConfig,
    base: Dataset,
    graph: ndsearch::graph::Csr,
    queries: Dataset,
    medoid: VectorId,
}

fn overload_fixture() -> Overload {
    let (base, queries) = DatasetSpec::sift_scaled(500, 16).build_pair();
    let index = Vamana::build(&base, VamanaParams::default());
    let mut config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
    config.ecc.hard_decision_failure_prob = 0.0;
    Overload {
        config,
        graph: index.base_graph().clone(),
        medoid: index.medoid(),
        base,
        queries,
    }
}

fn overload_run(fx: &Overload, slo: SloPolicy, gap_ns: Nanos, deadline_ns: Nanos) -> ServeReport {
    let prepared = Prepared::stage(
        &fx.config,
        &fx.graph,
        &fx.base,
        &ndsearch::anns::trace::BatchTrace::default(),
    );
    let serve = ServeConfig {
        max_inflight: 4,
        slo,
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(&fx.config, serve, &prepared, &fx.base, &fx.graph);
    for i in 0..60 {
        let q = fx
            .queries
            .vector((i % fx.queries.len()) as VectorId)
            .to_vec();
        let arrival = i as Nanos * gap_ns;
        let mut req = QueryRequest::at(arrival, q, vec![fx.medoid]);
        req.deadline_ns = Some(arrival + deadline_ns);
        engine.submit(req);
    }
    engine.run_to_completion()
}

#[test]
fn shed_doomed_saves_survivors_under_overload() {
    let fx = overload_fixture();
    // Calibrate: one query alone, no deadline.
    let solo = overload_run(&fx, SloPolicy::None, Nanos::MAX / 128, Nanos::MAX / 2);
    let l = solo.outcomes[0].latency_ns();
    assert!(l > 0);
    // 60 queries at 8 arrivals per unloaded-latency against 4 slots is a
    // sustained ~2× overload; deadlines at 4× the unloaded latency.
    let off = overload_run(&fx, SloPolicy::None, l / 8, 4 * l);
    let on = overload_run(&fx, SloPolicy::ShedDoomed { min_slack_ns: 0 }, l / 8, 4 * l);

    // Shedding really triggered, and nothing was silently dropped: every
    // shed query is reported Rejected (from the queue) or Expired (from
    // flight), and every submitted query reached a terminal state.
    assert!(on.sheds() > 0, "2x overload must shed");
    assert_eq!(on.outcomes.len(), 60);
    assert_eq!(off.outcomes.len(), 60);
    for o in &on.outcomes {
        assert!(is_terminal(o.state), "query {} not terminal", o.id);
        if o.shed {
            assert!(
                o.state == SessionState::Rejected || o.state == SessionState::Expired,
                "shed query {} reported {:?}",
                o.id,
                o.state
            );
        }
    }
    assert_eq!(off.sheds(), 0, "SloPolicy::None must never shed");

    // The point of shedding: capacity stops being burned on doomed
    // sessions, so more of the survivors complete on time...
    let on_time_on = on.outcomes.iter().filter(|o| o.on_time()).count();
    let on_time_off = off.outcomes.iter().filter(|o| o.on_time()).count();
    assert!(
        on_time_on > on_time_off,
        "shedding must improve on-time completions: {on_time_on} vs {on_time_off}"
    );
    // ...and the overall SLO attainment improves with it.
    assert!(
        on.slo_attainment() > off.slo_attainment(),
        "attainment: shed {} vs unshed {}",
        on.slo_attainment(),
        off.slo_attainment()
    );
}
