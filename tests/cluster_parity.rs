//! Property test: sharded scatter–gather serving is element-identical to
//! the unsharded engine.
//!
//! The merge theorem `top_k(S) = top_k(∪ᵢ top_k(Sᵢ))` holds whenever
//! each shard contributes its *exact* top-k. The test pins the engines to
//! that regime by serving with a beam width at least the dataset size, so
//! both the unsharded search and every per-shard search are exhaustive
//! over their (connected) graphs — then asserts, over randomized
//! datasets, tombstone sets and seeds, that the cluster's merged top-k
//! equals the unsharded [`ServeEngine`]'s top-k *element-wise* (distances
//! and global ids) for every shard count in {1, 2, 4, 8} and both
//! partition policies. Tombstones are applied through each engine's own
//! update path, so delete routing and result filtering are under test
//! too.

use proptest::prelude::*;
use proptest::test_runner::{Config, TestRng};

use ndsearch::anns::index::MutableIndex;
use ndsearch::anns::vamana::{Vamana, VamanaParams};
use ndsearch::core::cluster::{
    ClusterEngine, ClusterQueryRequest, ReplicaPolicy, ReplicationConfig,
};
use ndsearch::core::config::NdsConfig;
use ndsearch::core::deploy::Deployment;
use ndsearch::core::serve::{QueryRequest, ServeConfig, ServeEngine, UpdateRequest};
use ndsearch::vector::shard::{ShardPlan, ShardPolicy};
use ndsearch::vector::synthetic::DatasetSpec;
use ndsearch::vector::{Dataset, VectorId};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const POLICIES: [ShardPolicy; 2] = [ShardPolicy::Hash, ShardPolicy::BalancedSize];

fn vamana_builder(ds: &Dataset) -> (Box<dyn MutableIndex>, VectorId) {
    let index = Vamana::build(ds, VamanaParams::default());
    let entry = index.medoid();
    (Box::new(index), entry)
}

#[test]
fn sharded_topk_is_element_identical_to_unsharded() {
    proptest::test_runner::run(
        Config { cases: 3 },
        "sharded_topk_is_element_identical_to_unsharded",
        |rng: &mut TestRng| {
            let n = (150usize..240).generate(rng);
            let q = (3usize..6).generate(rng);
            let (base, queries) = DatasetSpec::sift_scaled(n, q).build_pair();
            let mut config = NdsConfig::scaled_for(n, base.stored_vector_bytes());
            config.ecc.hard_decision_failure_prob = 0.0;
            // Exhaustive regime: beam width ≥ n makes every search exact
            // over its (sub-)corpus, so parity is the merge theorem, not
            // luck.
            let serve = ServeConfig {
                beam_width: n,
                k: (4usize..12).generate(rng),
                ..ServeConfig::default()
            };
            let tombstones: Vec<VectorId> = {
                let count = (0usize..12).generate(rng);
                let mut ids: Vec<VectorId> = (0..count)
                    .map(|_| (0..n).generate(rng) as VectorId)
                    .collect();
                ids.sort_unstable();
                ids.dedup();
                ids
            };
            let plan_seed = (0u64..u64::MAX).generate(rng);

            // ---- Unsharded reference: mutable deployment, deletes
            // through the update path, then the queries. ----
            let index = Vamana::build(&base, VamanaParams::default());
            let medoid = index.medoid();
            let deploy = Deployment::stage(&config, Box::new(index), base.clone());
            let mut flat = ServeEngine::with_deployment(&config, serve.clone(), deploy);
            for &t in &tombstones {
                flat.submit_update(UpdateRequest::delete_at(0, t));
            }
            flat.run_to_completion();
            for (_, qv) in queries.iter() {
                flat.submit(QueryRequest::at(0, qv.to_vec(), vec![medoid]));
            }
            let flat_report = flat.run_to_completion();
            prop_assert_eq!(flat_report.completed(), q);

            for shards in SHARD_COUNTS {
                for policy in POLICIES {
                    let plan = ShardPlan::partition(n, shards, policy, plan_seed);
                    let mut cluster =
                        ClusterEngine::stage(&config, serve.clone(), plan, &base, vamana_builder);
                    for &t in &tombstones {
                        cluster.submit_update(UpdateRequest::delete_at(0, t));
                    }
                    cluster.run_to_completion();
                    for (_, qv) in queries.iter() {
                        cluster.submit(ClusterQueryRequest::at(0, qv.to_vec()));
                    }
                    let report = cluster.run_to_completion();
                    prop_assert_eq!(report.updates_completed(), tombstones.len());
                    for (i, outcome) in report.outcomes.iter().enumerate() {
                        let want = &flat_report.outcomes[i].results;
                        prop_assert_eq!(
                            &outcome.results,
                            want,
                            "query {} diverged at {} shards / {} policy \
                             (n = {}, k = {}, {} tombstones)",
                            i,
                            shards,
                            policy.name(),
                            n,
                            serve.k,
                            tombstones.len()
                        );
                        // No tombstone may surface from any shard.
                        for t in &tombstones {
                            prop_assert!(!outcome.results.iter().any(|nb| nb.id == *t));
                        }
                    }
                }
            }
            Ok(())
        },
    );
}

/// Replication parity: replicas of a shard are deterministic twins (same
/// sub-dataset, same build, same update fan-out), so in the exhaustive
/// regime a no-failure cluster with R ∈ {2, 3} replicas returns
/// element-identical top-k to the single-replica cluster under every
/// routing policy — tombstones applied through the replicated update
/// path included.
#[test]
fn replicated_topk_is_element_identical_to_single_replica() {
    proptest::test_runner::run(
        Config { cases: 2 },
        "replicated_topk_is_element_identical_to_single_replica",
        |rng: &mut TestRng| {
            let n = (150usize..240).generate(rng);
            let q = (3usize..6).generate(rng);
            let (base, queries) = DatasetSpec::sift_scaled(n, q).build_pair();
            let mut config = NdsConfig::scaled_for(n, base.stored_vector_bytes());
            config.ecc.hard_decision_failure_prob = 0.0;
            let serve = ServeConfig {
                beam_width: n,
                k: (4usize..12).generate(rng),
                ..ServeConfig::default()
            };
            let tombstones: Vec<VectorId> = {
                let count = (0usize..10).generate(rng);
                let mut ids: Vec<VectorId> = (0..count)
                    .map(|_| (0..n).generate(rng) as VectorId)
                    .collect();
                ids.sort_unstable();
                ids.dedup();
                ids
            };
            let plan_seed = (0u64..u64::MAX).generate(rng);
            let shards = 2usize;

            let run = |replication: ReplicationConfig| {
                let plan = ShardPlan::partition(n, shards, ShardPolicy::BalancedSize, plan_seed);
                let mut cluster = ClusterEngine::stage_replicated(
                    &config,
                    serve.clone(),
                    plan,
                    replication,
                    &base,
                    vamana_builder,
                );
                for &t in &tombstones {
                    cluster.submit_update(UpdateRequest::delete_at(0, t));
                }
                cluster.run_to_completion();
                for (_, qv) in queries.iter() {
                    cluster.submit(ClusterQueryRequest::at(0, qv.to_vec()));
                }
                cluster.run_to_completion()
            };

            let reference = run(ReplicationConfig::default());
            prop_assert_eq!(reference.completed(), q);
            prop_assert_eq!(reference.updates_completed(), tombstones.len());
            for replicas in [2usize, 3] {
                for policy in [
                    ReplicaPolicy::RoundRobin,
                    ReplicaPolicy::LeastLoaded,
                    ReplicaPolicy::Hedged { delay_ns: 25_000 },
                ] {
                    let report = run(ReplicationConfig::replicated(replicas).with_policy(policy));
                    prop_assert_eq!(report.updates_completed(), tombstones.len());
                    prop_assert_eq!(report.completed(), q);
                    prop_assert_eq!(report.failovers(), 0);
                    for (i, outcome) in report.outcomes.iter().enumerate() {
                        prop_assert_eq!(
                            &outcome.results,
                            &reference.outcomes[i].results,
                            "query {} diverged at R = {} / {:?} (n = {}, k = {}, \
                             {} tombstones)",
                            i,
                            replicas,
                            policy,
                            n,
                            serve.k,
                            tombstones.len()
                        );
                        for t in &tombstones {
                            prop_assert!(!outcome.results.iter().any(|nb| nb.id == *t));
                        }
                    }
                }
            }
            Ok(())
        },
    );
}
