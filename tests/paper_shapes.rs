//! Cheap, assertable versions of the qualitative shapes in the paper's
//! remaining figures (ECC sweep, LUN coverage, batch behaviour, Table I).

use ndsearch::anns::hnsw::{Hnsw, HnswParams};
use ndsearch::anns::index::{GraphAnnsIndex, SearchParams};
use ndsearch::core::config::{NdsConfig, SchedulingConfig};
use ndsearch::core::engine::NdsEngine;
use ndsearch::core::pipeline::Prepared;
use ndsearch::flash::ecc::EccConfig;
use ndsearch::vector::synthetic::DatasetSpec;
use ndsearch::vector::DistanceKind;

struct Fixture {
    base: ndsearch::vector::Dataset,
    graph: ndsearch::graph::Csr,
    trace: ndsearch::anns::trace::BatchTrace,
    config: NdsConfig,
}

fn fixture(batch: usize) -> Fixture {
    let (base, queries) = DatasetSpec::sift_scaled(2500, batch).build_pair();
    let index = Hnsw::build(&base, HnswParams::default());
    let out = index.search_batch(
        &base,
        &queries,
        &SearchParams::new(10, 64, DistanceKind::L2),
    );
    let config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
    Fixture {
        base,
        graph: index.base_graph().clone(),
        trace: out.trace,
        config,
    }
}

fn run(fx: &Fixture, config: &NdsConfig) -> ndsearch::core::report::NdsReport {
    let prepared = Prepared::stage(config, &fx.graph, &fx.base, &fx.trace);
    NdsEngine::new(config).run(&prepared)
}

/// Fig. 18(b): more hard-decision LDPC failures → monotonically more
/// latency; the 1 % default is within a few percent of fault-free.
#[test]
fn ecc_failure_sweep_is_monotone() {
    let fx = fixture(128);
    let latency = |p: f64| {
        let config = NdsConfig {
            ecc: EccConfig {
                hard_decision_failure_prob: p,
                ..EccConfig::default()
            },
            ..fx.config.clone()
        };
        run(&fx, &config).total_ns
    };
    let l0 = latency(0.0);
    let l1 = latency(0.01);
    let l5 = latency(0.05);
    let l10 = latency(0.10);
    let l30 = latency(0.30);
    assert!(l1 <= l5 && l5 <= l10 && l10 <= l30, "{l1} {l5} {l10} {l30}");
    let default_overhead = l1 as f64 / l0 as f64;
    assert!(
        default_overhead < 1.20,
        "1% failures should be cheap: {default_overhead}"
    );
    let worst = l30 as f64 / l1 as f64;
    assert!(
        (1.02..=2.5).contains(&worst),
        "30% failure slowdown {worst} should be visible but bounded (paper: 1.23-1.66x)"
    );
}

/// Fig. 4(b): with the construction-order layout, a large batch touches
/// most LUNs (the paper measures >82 %).
#[test]
fn batch_touches_most_luns() {
    let fx = fixture(256);
    let config = NdsConfig {
        scheduling: SchedulingConfig::bare(),
        ..fx.config.clone()
    };
    let r = run(&fx, &config);
    assert!(
        r.lun_coverage > 0.5,
        "LUN coverage {} should be high for a 256-query batch",
        r.lun_coverage
    );
}

/// Fig. 19: batches past the resource cap split into sub-batches and
/// throughput per batch stops improving.
#[test]
fn oversized_batches_split() {
    let fx = fixture(96);
    let mut config = fx.config.clone();
    config.max_batch_inflight = 32;
    let r = run(&fx, &config);
    assert_eq!(r.sub_batches, 3);
    config.max_batch_inflight = 4096;
    let single = run(&fx, &config);
    assert_eq!(single.sub_batches, 1);
    assert!(single.total_ns <= r.total_ns, "splitting must not be free");
}

/// Fig. 17: the breakdown buckets cover the whole critical path and NAND
/// read is a leading component under the full scheduling stack.
#[test]
fn breakdown_is_complete_and_nand_led() {
    let fx = fixture(256);
    let r = run(&fx, &fx.config);
    assert_eq!(r.breakdown.total_ns(), r.total_ns);
    let fractions = r.breakdown.fractions();
    let nand = fractions
        .iter()
        .find(|(l, _)| *l == "NAND read")
        .map(|(_, f)| *f)
        .expect("bucket exists");
    assert!(
        nand > 0.10,
        "NAND read fraction {nand} should be significant"
    );
    let pcie = fractions
        .iter()
        .find(|(l, _)| *l == "SSD I/O (PCIe)")
        .map(|(_, f)| *f)
        .unwrap();
    assert!(
        pcie < 0.25,
        "PCIe fraction {pcie} must be small (paper ~6%)"
    );
}

/// Table I / §VII-B: power budget and storage density arithmetic.
#[test]
fn table1_budget_and_density() {
    use ndsearch::core::area::AreaModel;
    use ndsearch::core::energy::PowerModel;
    let p = PowerModel::default();
    assert!((p.ndsearch_total_w() - 26.32).abs() < 0.01);
    assert!(p.within_budget());
    let a = AreaModel::searssd_default();
    assert!((a.effective_density() - 5.64).abs() < 0.05);
}

/// §II-B / Fig. 9: the modified multi-LUN search sequence moves orders of
/// magnitude fewer bytes over the channel bus than a stock multi-LUN read.
#[test]
fn search_page_filters_the_bus() {
    use ndsearch::flash::command::{multi_lun_sequence, MultiLunOp, NandCommand};
    use ndsearch::flash::geometry::FlashGeometry;
    let geom = FlashGeometry::searssd_default();
    let luns = [0u32, 1, 2, 3];
    let bus_bytes = |op, result_bytes| -> u64 {
        multi_lun_sequence(op, &luns, &geom, result_bytes)
            .iter()
            .map(|c| match c {
                NandCommand::DataOut { bytes, .. } => u64::from(*bytes),
                _ => 0,
            })
            .sum()
    };
    let read = bus_bytes(MultiLunOp::Read, 0);
    let search = bus_bytes(MultiLunOp::Search, 128);
    // The paper quotes data filtered to as little as 1/32 of [47]'s PCIe
    // traffic; with 16 KiB pages vs 128 B result lists the bus sees 128x
    // less.
    assert_eq!(read, 4 * 16 * 1024);
    assert_eq!(search, 4 * 128);
}
