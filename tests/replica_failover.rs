//! End-to-end replicated serving under failures: a 4-shard × 2-replica
//! cluster loses a device mid-run and must keep answering — every
//! in-flight and subsequent query completes on the survivor at the
//! single-device recall gate, bit-identically across reruns — and a
//! hedged cluster under an ECC storm must win its hedge races.

use ndsearch::anns::index::MutableIndex;
use ndsearch::anns::vamana::{Vamana, VamanaParams};
use ndsearch::core::cluster::{
    ClusterEngine, ClusterQueryRequest, FailureSchedule, ReplicaPolicy, ReplicationConfig,
};
use ndsearch::core::config::NdsConfig;
use ndsearch::core::serve::ServeConfig;
use ndsearch::flash::timing::Nanos;
use ndsearch::vector::recall::{ground_truth, recall_at_k};
use ndsearch::vector::shard::{ShardPlan, ShardPolicy};
use ndsearch::vector::synthetic::DatasetSpec;
use ndsearch::vector::{Dataset, DistanceKind, VectorId};

fn vamana_builder(ds: &Dataset) -> (Box<dyn MutableIndex>, VectorId) {
    let index = Vamana::build(ds, VamanaParams::default());
    let entry = index.medoid();
    (Box::new(index), entry)
}

fn fixture() -> (NdsConfig, Dataset, Dataset) {
    let (base, queries) = DatasetSpec::sift_scaled(700, 24).build_pair();
    let mut config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
    config.ecc.hard_decision_failure_prob = 0.0;
    (config, base, queries)
}

fn serve() -> ServeConfig {
    ServeConfig {
        k: 10,
        beam_width: 80,
        ..ServeConfig::default()
    }
}

fn assert_recall(base: &Dataset, queries: &Dataset, report: &ndsearch::core::ClusterReport) {
    let merged: Vec<Vec<VectorId>> = report
        .outcomes
        .iter()
        .map(|o| o.results.iter().map(|n| n.id).collect())
        .collect();
    let gt = ground_truth(base, queries, 10, DistanceKind::L2);
    let recall = recall_at_k(&gt, &merged, 10);
    assert!(
        recall >= 0.85,
        "degraded-cluster recall {recall} below 0.85"
    );
}

#[test]
fn replica_kill_mid_run_fails_over_without_losing_queries() {
    let (config, base, queries) = fixture();
    // Queries arrive over ~1.2 ms of simulated time; shard 0's replica 0
    // dies at 300 µs — after it has completed some sessions, while others
    // are in flight and yet more have not even arrived.
    let kill_at: Nanos = 300_000;
    let run = || {
        let plan = ShardPlan::partition(base.len(), 4, ShardPolicy::BalancedSize, 0x5A);
        let replication = ReplicationConfig::replicated(2)
            .with_failures(FailureSchedule::new().kill(kill_at, 0, 0));
        let mut cluster = ClusterEngine::stage_replicated(
            &config,
            serve(),
            plan,
            replication,
            &base,
            vamana_builder,
        );
        for (i, (_, q)) in queries.iter().enumerate() {
            cluster.submit(ClusterQueryRequest::at(i as Nanos * 50_000, q.to_vec()));
        }
        cluster.run_to_completion()
    };
    let report = run();

    // Nothing lost: every query — already in flight on the dead device or
    // arriving after the kill — completed on the survivor.
    assert_eq!(report.completed(), queries.len(), "failover lost queries");
    assert!(report.failovers() > 0, "mid-run kill must re-seed sessions");
    let s0 = &report.shards[0];
    assert!(!s0.replicas[0].alive);
    assert_eq!(s0.replicas[0].killed_ns, Some(kill_at));
    assert!(s0.replicas[1].alive);
    // The survivor served both its own share and the re-seeded sessions.
    assert!(s0.replicas[1].report.completed() > queries.len() / 2);
    assert!(s0.availability < 1.0 && s0.availability > 0.0);
    for s in &report.shards[1..] {
        assert_eq!(s.availability, 1.0);
    }
    assert!(report.availability() > 0.0 && report.availability() <= 1.0);

    // Quality survives the outage: merged top-k still at the gate.
    assert_recall(&base, &queries, &report);

    // And the whole degraded run replays bit-identically.
    assert_eq!(report, run(), "failover run must be deterministic");
}

#[test]
fn hedged_cluster_rides_out_an_ecc_storm() {
    let (config, base, queries) = fixture();
    // Every shard's replica 0 is stormed before serving anything; the
    // hedged router must fire backups on the healthy replica 1 and take
    // the earlier completion.
    let plan = ShardPlan::partition(base.len(), 4, ShardPolicy::BalancedSize, 0x5A);
    let storm = (0..4).fold(FailureSchedule::new(), |f, s| f.ecc_storm(0, s, 0, 0.9));
    let replication = ReplicationConfig::replicated(2)
        .with_policy(ReplicaPolicy::Hedged { delay_ns: 150_000 })
        .with_failures(storm);
    let mut cluster =
        ClusterEngine::stage_replicated(&config, serve(), plan, replication, &base, vamana_builder);
    for (i, (_, q)) in queries.iter().enumerate() {
        cluster.submit(ClusterQueryRequest::at(i as Nanos * 50_000, q.to_vec()));
    }
    let report = cluster.run_to_completion();
    assert_eq!(report.completed(), queries.len());
    assert!(
        report.hedges() > 0,
        "storm must push sessions past the delay"
    );
    assert!(report.hedge_wins() > 0, "healthy replicas must win races");
    let rate = report.hedge_win_rate();
    assert!(rate > 0.0 && rate <= 1.0, "hedge win rate {rate}");
    assert_eq!(report.availability(), 1.0, "a storm degrades, not kills");
    assert_recall(&base, &queries, &report);
}
