//! Workspace-level property-based tests (proptest) on the core data
//! structures and invariants.

use proptest::prelude::*;

use ndsearch::anns::bitonic::bitonic_sort;
use ndsearch::flash::ftl::Ftl;
use ndsearch::flash::geometry::FlashGeometry;
use ndsearch::graph::csr::Csr;
use ndsearch::graph::luncsr::LunCsr;
use ndsearch::graph::mapping::{PlacementPolicy, VertexMapping};
use ndsearch::graph::reorder::{bandwidth, Permutation, ReorderMethod};
use ndsearch::vector::distance::{angular, l2_squared};
use ndsearch::vector::topk::{Neighbor, TopK};

proptest! {
    #[test]
    fn bitonic_sorts_anything(mut v in proptest::collection::vec(any::<i32>(), 0..300)) {
        let mut expected = v.clone();
        expected.sort_unstable();
        bitonic_sort(&mut v);
        prop_assert_eq!(v, expected);
    }

    #[test]
    fn topk_matches_sort(
        v in proptest::collection::vec(0u32..10_000, 1..200),
        k in 1usize..20,
    ) {
        let mut top = TopK::new(k);
        for (i, &x) in v.iter().enumerate() {
            top.push(Neighbor::new(x as f32, i as u32));
        }
        let got: Vec<f32> = top.into_sorted_vec().iter().map(|n| n.distance).collect();
        let mut expected: Vec<f32> = v.iter().map(|&x| x as f32).collect();
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        expected.truncate(k);
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn l2_is_symmetric_and_nonnegative(
        a in proptest::collection::vec(-100.0f32..100.0, 8),
        b in proptest::collection::vec(-100.0f32..100.0, 8),
    ) {
        let d1 = l2_squared(&a, &b);
        let d2 = l2_squared(&b, &a);
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() <= f32::EPSILON * d1.abs().max(1.0));
        prop_assert_eq!(l2_squared(&a, &a), 0.0);
    }

    #[test]
    fn angular_is_bounded(
        a in proptest::collection::vec(-100.0f32..100.0, 8),
        b in proptest::collection::vec(-100.0f32..100.0, 8),
    ) {
        let d = angular(&a, &b);
        prop_assert!((0.0..=2.0 + 1e-6).contains(&d), "d = {}", d);
    }

    #[test]
    fn permutation_round_trips(n in 1usize..200, seed in any::<u64>()) {
        let lists = vec![Vec::new(); n];
        let csr = Csr::from_adjacency(&lists).unwrap();
        let perm = ReorderMethod::RandomShuffle.permutation(&csr, seed);
        for v in 0..n as u32 {
            prop_assert_eq!(perm.old_of(perm.new_of(v)), v);
        }
    }

    #[test]
    fn relabel_preserves_edge_count(
        edges in proptest::collection::vec((0u32..50, 0u32..50), 0..150),
        seed in any::<u64>(),
    ) {
        let csr = Csr::from_edges(50, &edges, false).unwrap();
        let perm = ReorderMethod::RandomShuffle.permutation(&csr, seed);
        let relabeled = csr.relabel(&perm);
        prop_assert_eq!(relabeled.num_edges(), csr.num_edges());
        // Degree multiset is preserved.
        let mut d1: Vec<usize> = (0..50u32).map(|v| csr.degree(v)).collect();
        let mut d2: Vec<usize> = (0..50u32).map(|v| relabeled.degree(v)).collect();
        d1.sort_unstable();
        d2.sort_unstable();
        prop_assert_eq!(d1, d2);
    }

    #[test]
    fn degree_ascending_bfs_never_worse_than_shuffle(
        ring_extra in 2u32..20,
        seed in any::<u64>(),
    ) {
        let n = 120u32;
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push((i, (i + 1) % n));
            edges.push((i, (i + ring_extra) % n));
        }
        let g = Csr::from_edges(n as usize, &edges, true).unwrap();
        let shuffled = g.relabel(&ReorderMethod::RandomShuffle.permutation(&g, seed));
        let ours = shuffled.relabel(
            &ReorderMethod::DegreeAscendingBfs.permutation(&shuffled, 0),
        );
        prop_assert!(bandwidth(&ours) <= bandwidth(&shuffled) + 1e-9);
    }

    #[test]
    fn mapping_is_injective(
        n in 1usize..2000,
        bytes in 64usize..512,
        multiplane in any::<bool>(),
    ) {
        let geom = FlashGeometry::tiny();
        let capacity = geom.total_pages() as usize * (geom.page_bytes as usize / bytes);
        let n = n.min(capacity);
        let policy = if multiplane {
            PlacementPolicy::MultiPlaneAware
        } else {
            PlacementPolicy::Linear
        };
        let m = VertexMapping::place(geom, n, bytes, policy);
        let mut seen = std::collections::HashSet::new();
        for v in 0..n as u32 {
            let a = m.addr_identity(v);
            prop_assert!(seen.insert((a.lun, a.plane_in_lun, a.block, a.page, a.byte)));
        }
    }

    #[test]
    fn luncsr_survives_random_refreshes(
        ops in proptest::collection::vec((0u32..16, 0u32..4), 0..100),
    ) {
        let geom = FlashGeometry::tiny();
        let n = 300usize;
        let lists: Vec<Vec<u32>> = (0..n as u32).map(|v| vec![(v + 1) % n as u32]).collect();
        let csr = Csr::from_adjacency(&lists).unwrap();
        let mapping = VertexMapping::place(geom, n, 128, PlacementPolicy::MultiPlaneAware);
        let mut luncsr = LunCsr::new(csr, mapping);
        let mut ftl = Ftl::new(geom, 5);
        for (plane, block) in ops {
            for ev in ftl.refresh_block(plane, block) {
                luncsr.apply_refresh(&ev);
            }
        }
        prop_assert!(ftl.is_bijective());
        prop_assert!(luncsr.consistent_with_ftl(&ftl));
    }

    #[test]
    fn delta_overlay_compact_preserves_live_reachability(
        appends in proptest::collection::vec(proptest::collection::vec(0u32..10_000, 0..6), 1..40),
        patches in proptest::collection::vec((0u32..10_000, proptest::collection::vec(0u32..10_000, 0..6)), 0..20),
        tombstones in proptest::collection::vec(0u32..10_000, 0..25),
    ) {
        // Base: a 100-vertex ring staged as LUNCSR; then a random overlay
        // of appends, backlink patches and tombstones.
        let geom = FlashGeometry::tiny();
        let n0 = 100usize;
        let lists: Vec<Vec<u32>> = (0..n0 as u32).map(|v| vec![(v + 1) % n0 as u32]).collect();
        let csr = Csr::from_adjacency(&lists).unwrap();
        let mapping = VertexMapping::place(geom, n0, 128, PlacementPolicy::MultiPlaneAware);
        let mut lc = LunCsr::new(csr, mapping);
        for adj in appends {
            let n = lc.num_vertices() as u32;
            lc.append_vertex(adj.into_iter().map(|x| x % n).collect());
        }
        let n = lc.num_vertices() as u32;
        for (v, adj) in patches {
            lc.set_neighbors(v % n, adj.into_iter().map(|x| x % n).collect());
        }
        for t in tombstones {
            lc.tombstone(t % n);
        }
        let compacted = lc.compact();
        prop_assert_eq!(compacted.num_vertices(), lc.num_vertices());
        prop_assert_eq!(compacted.delta_vertices(), 0);
        // Every edge reachable through base+delta between live vertices is
        // identically reachable after compact(), and nothing else is.
        for v in 0..n {
            prop_assert_eq!(compacted.is_tombstoned(v), lc.is_tombstoned(v));
            if lc.is_tombstoned(v) {
                prop_assert!(compacted.neighbors(v).is_empty());
                continue;
            }
            let live: Vec<u32> = lc
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&nb| !lc.is_tombstoned(nb))
                .collect();
            prop_assert_eq!(compacted.neighbors(v), live.as_slice());
        }
        // Compaction is deterministic and idempotent on the live edge set.
        let twice = compacted.compact();
        for v in 0..n {
            prop_assert_eq!(twice.neighbors(v), compacted.neighbors(v));
        }
        // Fresh placement: addresses valid and unique.
        let mut seen = std::collections::HashSet::new();
        for v in 0..n {
            let a = compacted.physical_addr(v);
            prop_assert!(seen.insert((a.lun, a.plane_in_lun, a.block, a.page, a.byte)));
        }
    }

    #[test]
    fn permutation_composition_is_associative(n in 1usize..60, s1 in any::<u64>(), s2 in any::<u64>()) {
        let csr = Csr::from_adjacency(&vec![Vec::new(); n]).unwrap();
        let p = ReorderMethod::RandomShuffle.permutation(&csr, s1);
        let q = ReorderMethod::RandomShuffle.permutation(&csr, s2);
        let ident = Permutation::identity(n);
        let via_ident = p.then(&ident).then(&q);
        let direct = p.then(&q);
        for v in 0..n as u32 {
            prop_assert_eq!(via_ident.new_of(v), direct.new_of(v));
        }
    }
}
