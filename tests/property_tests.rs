//! Workspace-level property-based tests (proptest) on the core data
//! structures and invariants.

use proptest::prelude::*;

use ndsearch::anns::beam::BeamSearcher;
use ndsearch::anns::bitonic::bitonic_sort;
use ndsearch::core::traffic::{
    ArrivalModel, EventKind, QueryMix, Scenario, TenantProfile, ZipfSampler,
};
use ndsearch::flash::ftl::Ftl;
use ndsearch::flash::geometry::FlashGeometry;
use ndsearch::graph::csr::Csr;
use ndsearch::graph::luncsr::LunCsr;
use ndsearch::graph::mapping::{PlacementPolicy, VertexMapping};
use ndsearch::graph::reorder::{bandwidth, Permutation, ReorderMethod};
use ndsearch::vector::distance::{
    angular, dot, dot_scalar, dot_unrolled, l2_squared, l2_squared_scalar, l2_squared_unrolled,
    DistanceKind,
};
use ndsearch::vector::quant::{Int8Quantizer, QuantCodes, QuantSpec, ScoreSource};
use ndsearch::vector::topk::{Neighbor, TopK};
use ndsearch::vector::Dataset;

/// The kernel-equivalence dims: every in-register shape (1..=8), the two
/// bench dims, and an odd length that exercises the 32-, 8- and scalar-tail
/// paths at once.
const KERNEL_DIMS: [usize; 11] = [1, 2, 3, 4, 5, 6, 7, 8, 64, 128, 257];

/// Distance in units-in-the-last-place between two same-sign finite floats.
fn ulp_diff(a: f32, b: f32) -> u64 {
    if a == b {
        return 0;
    }
    let ia = a.to_bits() as i64;
    let ib = b.to_bits() as i64;
    let ma = if ia < 0 { i32::MIN as i64 - ia } else { ia };
    let mb = if ib < 0 { i32::MIN as i64 - ib } else { ib };
    (ma - mb).unsigned_abs()
}

proptest! {
    #[test]
    fn bitonic_sorts_anything(mut v in proptest::collection::vec(any::<i32>(), 0..300)) {
        let mut expected = v.clone();
        expected.sort_unstable();
        bitonic_sort(&mut v);
        prop_assert_eq!(v, expected);
    }

    #[test]
    fn topk_matches_sort(
        v in proptest::collection::vec(0u32..10_000, 1..200),
        k in 1usize..20,
    ) {
        let mut top = TopK::new(k);
        for (i, &x) in v.iter().enumerate() {
            top.push(Neighbor::new(x as f32, i as u32));
        }
        let got: Vec<f32> = top.into_sorted_vec().iter().map(|n| n.distance).collect();
        let mut expected: Vec<f32> = v.iter().map(|&x| x as f32).collect();
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        expected.truncate(k);
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn l2_is_symmetric_and_nonnegative(
        a in proptest::collection::vec(-100.0f32..100.0, 8),
        b in proptest::collection::vec(-100.0f32..100.0, 8),
    ) {
        let d1 = l2_squared(&a, &b);
        let d2 = l2_squared(&b, &a);
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() <= f32::EPSILON * d1.abs().max(1.0));
        prop_assert_eq!(l2_squared(&a, &a), 0.0);
    }

    #[test]
    fn angular_is_bounded(
        a in proptest::collection::vec(-100.0f32..100.0, 8),
        b in proptest::collection::vec(-100.0f32..100.0, 8),
    ) {
        let d = angular(&a, &b);
        prop_assert!((0.0..=2.0 + 1e-6).contains(&d), "d = {}", d);
    }

    // ---- Kernel-tier equivalence: scalar vs unrolled vs dispatched
    // (AVX2/FMA when available) must agree within 16 ulp on every dim
    // shape, including odd tails. L2 terms are squares (always positive),
    // so any input range is cancellation-free.
    #[test]
    fn l2_kernel_tiers_agree_within_16_ulp(
        raw_a in proptest::collection::vec(-100.0f32..100.0, 257),
        raw_b in proptest::collection::vec(-100.0f32..100.0, 257),
        di in 0usize..11,
    ) {
        let dim = KERNEL_DIMS[di];
        let (a, b) = (&raw_a[..dim], &raw_b[..dim]);
        let scalar = l2_squared_scalar(a, b);
        prop_assert!(ulp_diff(scalar, l2_squared_unrolled(a, b)) <= 16, "unrolled, dim {}", dim);
        prop_assert!(ulp_diff(scalar, l2_squared(a, b)) <= 16, "dispatched, dim {}", dim);
        // The public eval entry point uses the dispatched kernel verbatim.
        prop_assert_eq!(DistanceKind::L2.eval(a, b).to_bits(), l2_squared(a, b).to_bits());
    }

    // Dot-family tiers (inner product and the three reductions inside
    // angular) are compared on positive components: with mixed signs the
    // result can be arbitrarily close to zero while the partial sums are
    // huge, so "N ulp of the result" is unbounded for *any* reordering —
    // cancellation, not kernel error. Positive operands make the sum
    // well-conditioned and the 16-ulp bound meaningful.
    #[test]
    fn dot_and_angular_kernel_tiers_agree_within_16_ulp(
        raw_a in proptest::collection::vec(0.01f32..1.0, 257),
        raw_b in proptest::collection::vec(0.01f32..1.0, 257),
        di in 0usize..11,
    ) {
        let dim = KERNEL_DIMS[di];
        let (a, b) = (&raw_a[..dim], &raw_b[..dim]);
        let scalar = dot_scalar(a, b);
        prop_assert!(ulp_diff(scalar, dot_unrolled(a, b)) <= 16, "unrolled, dim {}", dim);
        prop_assert!(ulp_diff(scalar, dot(a, b)) <= 16, "dispatched, dim {}", dim);
        // Angular is three dispatched dots plus well-conditioned scalar
        // arithmetic; compare against a scalar-kernel reconstruction.
        let ang_scalar = {
            let d = dot_scalar(a, b);
            let na = dot_scalar(a, a).sqrt();
            let nb = dot_scalar(b, b).sqrt();
            1.0 - (d / (na * nb)).clamp(-1.0, 1.0)
        };
        let ang = angular(a, b);
        prop_assert!(
            (ang - ang_scalar).abs() <= 1e-5,
            "angular dim {}: {} vs {}", dim, ang, ang_scalar
        );
    }

    // `eval_batch` / `eval_batch_ids` must match per-pair `eval`
    // element-wise, bit for bit, for every DistanceKind.
    #[test]
    fn eval_batch_matches_eval_elementwise(
        flat in proptest::collection::vec(0.01f32..1.0, 257 * 5),
        q_raw in proptest::collection::vec(0.01f32..1.0, 257),
        di in 0usize..11,
    ) {
        let dim = KERNEL_DIMS[di];
        let q = &q_raw[..dim];
        let rows: Vec<&[f32]> = (0..5).map(|i| &flat[i * 257..i * 257 + dim]).collect();
        let ds = ndsearch::vector::Dataset::from_rows(
            dim,
            rows.iter().map(|r| r.to_vec()).collect(),
        ).unwrap();
        let ids: Vec<u32> = vec![4, 0, 2, 2, 1, 3];
        for kind in DistanceKind::ALL {
            let mut out = vec![0.0f32; rows.len()];
            kind.eval_batch(q, &rows, &mut out);
            for (p, got) in rows.iter().zip(&out) {
                prop_assert_eq!(got.to_bits(), kind.eval(q, p).to_bits());
            }
            let mut by_id = Vec::new();
            kind.eval_batch_ids(q, &ds, &ids, &mut by_id);
            for (&id, got) in ids.iter().zip(&by_id) {
                prop_assert_eq!(got.to_bits(), kind.eval(q, ds.vector(id)).to_bits());
            }
        }
    }

    // Zero vectors are maximally distant under angular in every tier and
    // both batch entry points (exactly 1.0, no ulp slack).
    #[test]
    fn angular_zero_vector_is_exactly_one_in_every_tier(
        b_raw in proptest::collection::vec(0.01f32..1.0, 257),
        di in 0usize..11,
    ) {
        let dim = KERNEL_DIMS[di];
        let zeros = vec![0.0f32; dim];
        let b = &b_raw[..dim];
        prop_assert_eq!(angular(&zeros, b), 1.0);
        prop_assert_eq!(angular(b, &zeros), 1.0);
        prop_assert_eq!(DistanceKind::Angular.eval(&zeros, b), 1.0);
        let mut out = vec![f32::NAN; 2];
        DistanceKind::Angular.eval_batch(&zeros, &[b, &zeros], &mut out);
        prop_assert_eq!(out.clone(), vec![1.0, 1.0]);
        DistanceKind::Angular.eval_batch(b, &[&zeros], &mut out[..1]);
        prop_assert_eq!(out[0], 1.0);
    }

    #[test]
    fn permutation_round_trips(n in 1usize..200, seed in any::<u64>()) {
        let lists = vec![Vec::new(); n];
        let csr = Csr::from_adjacency(&lists).unwrap();
        let perm = ReorderMethod::RandomShuffle.permutation(&csr, seed);
        for v in 0..n as u32 {
            prop_assert_eq!(perm.old_of(perm.new_of(v)), v);
        }
    }

    #[test]
    fn relabel_preserves_edge_count(
        edges in proptest::collection::vec((0u32..50, 0u32..50), 0..150),
        seed in any::<u64>(),
    ) {
        let csr = Csr::from_edges(50, &edges, false).unwrap();
        let perm = ReorderMethod::RandomShuffle.permutation(&csr, seed);
        let relabeled = csr.relabel(&perm);
        prop_assert_eq!(relabeled.num_edges(), csr.num_edges());
        // Degree multiset is preserved.
        let mut d1: Vec<usize> = (0..50u32).map(|v| csr.degree(v)).collect();
        let mut d2: Vec<usize> = (0..50u32).map(|v| relabeled.degree(v)).collect();
        d1.sort_unstable();
        d2.sort_unstable();
        prop_assert_eq!(d1, d2);
    }

    #[test]
    fn degree_ascending_bfs_never_worse_than_shuffle(
        ring_extra in 2u32..20,
        seed in any::<u64>(),
    ) {
        let n = 120u32;
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push((i, (i + 1) % n));
            edges.push((i, (i + ring_extra) % n));
        }
        let g = Csr::from_edges(n as usize, &edges, true).unwrap();
        let shuffled = g.relabel(&ReorderMethod::RandomShuffle.permutation(&g, seed));
        let ours = shuffled.relabel(
            &ReorderMethod::DegreeAscendingBfs.permutation(&shuffled, 0),
        );
        prop_assert!(bandwidth(&ours) <= bandwidth(&shuffled) + 1e-9);
    }

    #[test]
    fn mapping_is_injective(
        n in 1usize..2000,
        bytes in 64usize..512,
        multiplane in any::<bool>(),
    ) {
        let geom = FlashGeometry::tiny();
        let capacity = geom.total_pages() as usize * (geom.page_bytes as usize / bytes);
        let n = n.min(capacity);
        let policy = if multiplane {
            PlacementPolicy::MultiPlaneAware
        } else {
            PlacementPolicy::Linear
        };
        let m = VertexMapping::place(geom, n, bytes, policy);
        let mut seen = std::collections::HashSet::new();
        for v in 0..n as u32 {
            let a = m.addr_identity(v);
            prop_assert!(seen.insert((a.lun, a.plane_in_lun, a.block, a.page, a.byte)));
        }
    }

    #[test]
    fn luncsr_survives_random_refreshes(
        ops in proptest::collection::vec((0u32..16, 0u32..4), 0..100),
    ) {
        let geom = FlashGeometry::tiny();
        let n = 300usize;
        let lists: Vec<Vec<u32>> = (0..n as u32).map(|v| vec![(v + 1) % n as u32]).collect();
        let csr = Csr::from_adjacency(&lists).unwrap();
        let mapping = VertexMapping::place(geom, n, 128, PlacementPolicy::MultiPlaneAware);
        let mut luncsr = LunCsr::new(csr, mapping);
        let mut ftl = Ftl::new(geom, 5);
        for (plane, block) in ops {
            for ev in ftl.refresh_block(plane, block) {
                luncsr.apply_refresh(&ev);
            }
        }
        prop_assert!(ftl.is_bijective());
        prop_assert!(luncsr.consistent_with_ftl(&ftl));
    }

    #[test]
    fn delta_overlay_compact_preserves_live_reachability(
        appends in proptest::collection::vec(proptest::collection::vec(0u32..10_000, 0..6), 1..40),
        patches in proptest::collection::vec((0u32..10_000, proptest::collection::vec(0u32..10_000, 0..6)), 0..20),
        tombstones in proptest::collection::vec(0u32..10_000, 0..25),
    ) {
        // Base: a 100-vertex ring staged as LUNCSR; then a random overlay
        // of appends, backlink patches and tombstones.
        let geom = FlashGeometry::tiny();
        let n0 = 100usize;
        let lists: Vec<Vec<u32>> = (0..n0 as u32).map(|v| vec![(v + 1) % n0 as u32]).collect();
        let csr = Csr::from_adjacency(&lists).unwrap();
        let mapping = VertexMapping::place(geom, n0, 128, PlacementPolicy::MultiPlaneAware);
        let mut lc = LunCsr::new(csr, mapping);
        for adj in appends {
            let n = lc.num_vertices() as u32;
            lc.append_vertex(adj.into_iter().map(|x| x % n).collect());
        }
        let n = lc.num_vertices() as u32;
        for (v, adj) in patches {
            lc.set_neighbors(v % n, adj.into_iter().map(|x| x % n).collect());
        }
        for t in tombstones {
            lc.tombstone(t % n);
        }
        let compacted = lc.compact();
        prop_assert_eq!(compacted.num_vertices(), lc.num_vertices());
        prop_assert_eq!(compacted.delta_vertices(), 0);
        // Every edge reachable through base+delta between live vertices is
        // identically reachable after compact(), and nothing else is.
        for v in 0..n {
            prop_assert_eq!(compacted.is_tombstoned(v), lc.is_tombstoned(v));
            if lc.is_tombstoned(v) {
                prop_assert!(compacted.neighbors(v).is_empty());
                continue;
            }
            let live: Vec<u32> = lc
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&nb| !lc.is_tombstoned(nb))
                .collect();
            prop_assert_eq!(compacted.neighbors(v), live.as_slice());
        }
        // Compaction is deterministic and idempotent on the live edge set.
        let twice = compacted.compact();
        for v in 0..n {
            prop_assert_eq!(twice.neighbors(v), compacted.neighbors(v));
        }
        // Fresh placement: addresses valid and unique.
        let mut seen = std::collections::HashSet::new();
        for v in 0..n {
            let a = compacted.physical_addr(v);
            prop_assert!(seen.insert((a.lun, a.plane_in_lun, a.block, a.page, a.byte)));
        }
    }

    #[test]
    fn zipf_skew_tracks_theta(
        n in 8usize..40,
        theta in 0.7f64..1.6,
        seed in any::<u64>(),
    ) {
        // Frequencies are rank-ordered, and raising theta concentrates
        // more mass on the hottest rank.
        let draws = 4_000usize;
        let hist = |theta: f64| {
            let z = ZipfSampler::new(n, theta);
            let mut rng = ndsearch::vector::rng::Pcg32::seed_from_u64(seed);
            let mut h = vec![0usize; n];
            for _ in 0..draws {
                h[z.sample(&mut rng)] += 1;
            }
            h
        };
        let lo = hist(theta);
        prop_assert_eq!(lo.iter().sum::<usize>(), draws);
        prop_assert!(lo[0] > lo[n - 1], "rank 0 ({}) not hotter than rank {} ({})", lo[0], n - 1, lo[n - 1]);
        let first_half: usize = lo[..n / 2].iter().sum();
        prop_assert!(first_half > draws - first_half, "mass not front-loaded");
        let hi = hist(theta + 0.6);
        prop_assert!(hi[0] > lo[0], "theta {} -> {} hot-rank mass fell: {} !> {}", theta, theta + 0.6, hi[0], lo[0]);
    }

    #[test]
    fn traffic_arrivals_are_monotone_for_every_model(
        model_pick in 0usize..3,
        rate in 500.0f64..50_000.0,
        events in 10usize..200,
        start in 0u64..1_000_000,
        seed in any::<u64>(),
    ) {
        let arrivals = match model_pick {
            0 => ArrivalModel::Poisson { rate_qps: rate },
            1 => ArrivalModel::Bursty {
                base_rate_qps: rate,
                spike_rate_qps: rate * 20.0,
                spike_windows: vec![(500_000, 1_500_000)],
            },
            _ => ArrivalModel::Diurnal {
                profile: vec![1.0, 0.2, 0.05, 0.6],
                period_ns: 4_000_000,
                peak_rate_qps: rate,
            },
        };
        let s = Scenario {
            arrivals,
            mix: QueryMix {
                zipf_theta: 0.9,
                delete_fraction: 0.0,
                tenants: vec![TenantProfile::new(0), TenantProfile::new(7).weight(2.0)],
            },
            events,
            start_ns: start,
            seed,
        };
        let t = s.generate(16, 0, 0..0);
        prop_assert_eq!(t.len(), events);
        // Merged stream is non-decreasing; each tenant's sub-stream is
        // strictly increasing (open-loop gaps are at least 1 ns).
        prop_assert!(t.events.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        prop_assert!(t.events.iter().all(|e| e.arrival_ns > start));
        for tenant in [0u32, 7] {
            let times: Vec<u64> = t
                .events
                .iter()
                .filter(|e| e.tenant == tenant)
                .map(|e| e.arrival_ns)
                .collect();
            prop_assert!(!times.is_empty());
            prop_assert!(times.windows(2).all(|w| w[0] < w[1]),
                "tenant {} sub-stream not strictly monotone", tenant);
        }
    }

    #[test]
    fn traffic_replay_is_bit_identical(
        events in 1usize..150,
        theta in 0.0f64..1.5,
        update_fraction in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let s = Scenario {
            arrivals: ArrivalModel::Poisson { rate_qps: 5_000.0 },
            mix: QueryMix {
                zipf_theta: theta,
                delete_fraction: 0.5,
                tenants: vec![
                    TenantProfile::new(2).deadline_ns(50_000),
                    TenantProfile::new(5).update_fraction(update_fraction).k(4),
                ],
            },
            events,
            start_ns: 0,
            seed,
        };
        let a = s.generate(32, 8, 10..50);
        prop_assert_eq!(&a, &s.generate(32, 8, 10..50));
        // Deadlines and k ride the right tenants.
        for e in &a.events {
            if let EventKind::Query { k, deadline_ns, .. } = &e.kind {
                match e.tenant {
                    2 => {
                        prop_assert_eq!(*k, None);
                        prop_assert_eq!(*deadline_ns, Some(e.arrival_ns + 50_000));
                    }
                    _ => {
                        prop_assert_eq!(*k, Some(4));
                        prop_assert_eq!(*deadline_ns, None);
                    }
                }
            }
        }
    }

    #[test]
    fn traffic_trace_is_invariant_under_tenant_order(
        events in 1usize..150,
        seed in any::<u64>(),
        rot in 0usize..3,
    ) {
        let tenants = vec![
            TenantProfile::new(0).weight(3.0).deadline_ns(80_000),
            TenantProfile::new(3).update_fraction(0.4),
            TenantProfile::new(9).weight(0.5).k(2),
        ];
        let mut s = Scenario {
            arrivals: ArrivalModel::Poisson { rate_qps: 2_000.0 },
            mix: QueryMix {
                zipf_theta: 0.8,
                delete_fraction: 0.3,
                tenants: tenants.clone(),
            },
            events,
            start_ns: 0,
            seed,
        };
        let reference = s.generate(16, 4, 0..30);
        let mut permuted = tenants;
        permuted.rotate_left(rot);
        permuted.reverse();
        s.mix.tenants = permuted;
        prop_assert_eq!(reference, s.generate(16, 4, 0..30));
    }

    // ---- Compressed-vector codes: training and encoding are pure
    // functions of (rows, spec, seed), so a code table is bit-identical
    // across regeneration, and a row's code is invariant under the order
    // rows are assigned to shards or tenants.
    #[test]
    fn quant_codes_bit_identical_across_regeneration_and_row_order(
        flat in proptest::collection::vec(-50.0f32..50.0, 12 * 40),
        seed in any::<u64>(),
        use_pq in any::<bool>(),
        rot in 1usize..39,
    ) {
        let dim = 12;
        let rows: Vec<Vec<f32>> = flat.chunks(dim).map(|c| c.to_vec()).collect();
        let n = rows.len();
        let ds = Dataset::from_rows(dim, rows.clone()).unwrap();
        let spec = if use_pq {
            QuantSpec::Pq { m: 4, bits: 4 }
        } else {
            QuantSpec::Int8
        };
        let full = QuantCodes::train(spec, &ds, seed).unwrap();
        prop_assert_eq!(&full, &QuantCodes::train(spec, &ds, seed).unwrap());
        prop_assert_eq!(&full.repack(&ds), &full);
        // Encode a rotated copy through the same trained quantizer: each
        // row's code must match its code in the original table.
        let mut rotated = rows;
        rotated.rotate_left(rot);
        let repacked = full.repack(&Dataset::from_rows(dim, rotated).unwrap());
        for i in 0..n {
            prop_assert_eq!(
                repacked.code(i as u32),
                full.code(((i + rot) % n) as u32),
                "row {} code changed under rotation {}", i, rot
            );
        }
    }

    // Int8 reconstruction: per dimension the round-trip error is at most
    // half the trained quantization step (plus f32 rounding slack) for
    // in-range values — and training scans every row at this scale, so
    // all stored rows are in range.
    #[test]
    fn int8_reconstruction_error_is_bounded_by_half_step(
        flat in proptest::collection::vec(-80.0f32..80.0, 9 * 30),
        seed in any::<u64>(),
    ) {
        let dim = 9;
        let rows: Vec<Vec<f32>> = flat.chunks(dim).map(|c| c.to_vec()).collect();
        let ds = Dataset::from_rows(dim, rows).unwrap();
        let q = Int8Quantizer::train(&ds, seed);
        let mut code = Vec::new();
        let mut rec = vec![0.0f32; dim];
        for (_, row) in ds.iter() {
            code.clear();
            q.encode_into(row, &mut code);
            q.decode_into(&code, &mut rec);
            for (d, (&x, &r)) in row.iter().zip(&rec).enumerate() {
                let bound = q.scale()[d] * 0.5 * (1.0 + 1e-3) + 1e-4;
                prop_assert!(
                    (x - r).abs() <= bound,
                    "dim {}: |{} - {}| > {}", d, x, r, bound
                );
            }
        }
    }

    // Exhaustive regime: complete graph, beam width n, rerank depth n —
    // traversal over codes visits every vertex and the exact rerank
    // rescores all of them, so the reranked result list must equal the
    // full-precision brute-force ranking bit for bit, whatever the code
    // family got wrong during traversal.
    #[test]
    fn rerank_recovers_exact_topk_in_exhaustive_regime(
        flat in proptest::collection::vec(-10.0f32..10.0, 8 * 24),
        qv in proptest::collection::vec(-10.0f32..10.0, 8),
        seed in any::<u64>(),
        use_pq in any::<bool>(),
    ) {
        let (dim, n) = (8usize, 24usize);
        let rows: Vec<Vec<f32>> = flat.chunks(dim).map(|c| c.to_vec()).collect();
        let ds = Dataset::from_rows(dim, rows).unwrap();
        let spec = if use_pq {
            QuantSpec::Pq { m: 4, bits: 3 }
        } else {
            QuantSpec::Int8
        };
        let codes = QuantCodes::train(spec, &ds, seed).unwrap();
        let lists: Vec<Vec<u32>> = (0..n as u32)
            .map(|v| (0..n as u32).filter(|&u| u != v).collect())
            .collect();
        let graph = Csr::from_adjacency(&lists).unwrap();
        let mut searcher = BeamSearcher::new(n, qv.clone(), vec![0], n, DistanceKind::L2);
        while searcher.step(&codes, &graph).is_some() {}
        prop_assert!(searcher.is_finished());
        let ids = searcher.rerank(&ds, n);
        prop_assert_eq!(ids.len(), n, "exhaustive beam must retain every vertex");
        let got = searcher.found();
        // Brute force through the same kernels and the same total order.
        let all: Vec<u32> = (0..n as u32).collect();
        let mut exact = Vec::new();
        ScoreSource::score_batch(&ds, DistanceKind::L2, &qv, &all, &mut exact);
        let mut want: Vec<Neighbor> = exact
            .iter()
            .enumerate()
            .map(|(i, &d)| Neighbor::new(d, i as u32))
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.id, w.id);
            prop_assert_eq!(g.distance.to_bits(), w.distance.to_bits());
        }
    }

    #[test]
    fn permutation_composition_is_associative(n in 1usize..60, s1 in any::<u64>(), s2 in any::<u64>()) {
        let csr = Csr::from_adjacency(&vec![Vec::new(); n]).unwrap();
        let p = ReorderMethod::RandomShuffle.permutation(&csr, s1);
        let q = ReorderMethod::RandomShuffle.permutation(&csr, s2);
        let ident = Permutation::identity(n);
        let via_ident = p.then(&ident).then(&q);
        let direct = p.then(&q);
        for v in 0..n as u32 {
            prop_assert_eq!(via_ident.new_of(v), direct.new_of(v));
        }
    }
}
