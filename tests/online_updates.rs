//! Integration tests of the mutable-deployment serving path: online
//! inserts/deletes as update sessions, flash write-path charging, and the
//! churn-recall acceptance gate (live overlay within 0.02 of a
//! from-scratch rebuild at equal parameters).

use ndsearch::anns::index::{GraphAnnsIndex, SearchParams};
use ndsearch::anns::vamana::{Vamana, VamanaParams};
use ndsearch::core::config::NdsConfig;
use ndsearch::core::deploy::Deployment;
use ndsearch::core::serve::{QueryRequest, ServeConfig, ServeEngine, SessionState, UpdateRequest};
use ndsearch::vector::recall::{ground_truth, recall_at_k};
use ndsearch::vector::synthetic::DatasetSpec;
use ndsearch::vector::{Dataset, DistanceKind, VectorId};

const N_FULL: usize = 800;
const N_BASE: usize = 600;
const N_QUERIES: usize = 20;

struct Churn {
    full: Dataset,
    queries: Dataset,
    config: NdsConfig,
    medoid: VectorId,
}

fn churn_fixture() -> (Churn, Deployment) {
    let (full, queries) = DatasetSpec::sift_scaled(N_FULL, N_QUERIES).build_pair();
    let mut prefix = Dataset::new(full.dim());
    for (_, v) in full.iter().take(N_BASE) {
        prefix.try_push(v).unwrap();
    }
    prefix.set_stored_vector_bytes(full.stored_vector_bytes());
    let index = Vamana::build(&prefix, VamanaParams::default());
    let medoid = index.medoid();
    let mut config = NdsConfig::scaled_for(N_FULL, full.stored_vector_bytes());
    config.ecc.hard_decision_failure_prob = 0.0;
    let deploy = Deployment::stage(&config, Box::new(index), prefix);
    (
        Churn {
            full,
            queries,
            config,
            medoid,
        },
        deploy,
    )
}

#[test]
fn insert_heavy_churn_keeps_recall_near_rebuild() {
    let (fx, deploy) = churn_fixture();
    let serve = ServeConfig::default();
    let mut engine = ServeEngine::with_deployment(&fx.config, serve.clone(), deploy);

    // ---- Churn: ingest the remaining vectors as update sessions. ----
    for id in N_BASE..N_FULL {
        engine.submit_update(UpdateRequest::insert_at(
            0,
            fx.full.vector(id as VectorId).to_vec(),
        ));
    }
    let ingest = engine.run_to_completion();
    assert_eq!(ingest.updates_completed(), N_FULL - N_BASE);
    assert!(ingest.updates.pages_programmed > 0, "no pages programmed");
    assert!(
        ingest.breakdown.program_ns > 0,
        "inserts must charge flash program latency"
    );
    assert!(
        engine.deployment().wear().max_wear_ratio() > 0.0,
        "inserts must charge wear"
    );
    assert_eq!(engine.deployment().dataset().len(), N_FULL);
    assert_eq!(
        engine.deployment().prepared().luncsr.delta_vertices(),
        N_FULL - N_BASE
    );

    // ---- Serve the benchmark queries over the live overlay. ----
    for (_, q) in fx.queries.iter() {
        engine.submit(QueryRequest::at(0, q.to_vec(), vec![fx.medoid]));
    }
    let report = engine.run_to_completion();
    assert_eq!(report.completed(), N_QUERIES);
    let live_ids: Vec<Vec<VectorId>> = report
        .outcomes
        .iter()
        .map(|o| o.results.iter().map(|n| n.id).collect())
        .collect();

    // ---- From-scratch rebuild at equal parameters. ----
    let rebuilt = Vamana::build(&fx.full, VamanaParams::default());
    let params = SearchParams::new(serve.k, serve.beam_width, DistanceKind::L2);
    let rebuilt_out = rebuilt.search_batch(&fx.full, &fx.queries, &params);
    let gt = ground_truth(&fx.full, &fx.queries, serve.k, DistanceKind::L2);
    let r_live = recall_at_k(&gt, &live_ids, serve.k);
    let r_rebuilt = recall_at_k(&gt, &rebuilt_out.id_lists(), serve.k);
    assert!(
        r_live >= r_rebuilt - 0.02,
        "live-overlay recall {r_live} trails rebuild {r_rebuilt} by more than 0.02"
    );
}

#[test]
fn delete_heavy_churn_filters_results_and_compacts() {
    let (fx, deploy) = churn_fixture();
    let mut engine = ServeEngine::with_deployment(&fx.config, ServeConfig::default(), deploy);
    // Delete a third of the base while queries are in flight.
    for (i, (_, q)) in fx.queries.iter().enumerate() {
        engine.submit(QueryRequest::at(
            i as u64 * 2_000,
            q.to_vec(),
            vec![fx.medoid],
        ));
    }
    let deleted: Vec<VectorId> = (0..N_BASE as VectorId).step_by(3).collect();
    for (i, &d) in deleted.iter().enumerate() {
        engine.submit_update(UpdateRequest::delete_at(i as u64 * 1_000, d));
    }
    let report = engine.run_to_completion();
    assert_eq!(report.updates_completed(), deleted.len());
    for o in &report.outcomes {
        assert_eq!(o.state, SessionState::Completed);
    }
    // Once every delete is durable, no query may surface a tombstone —
    // even though tombstoned vertices still route searches.
    for (_, q) in fx.queries.iter() {
        engine.submit(QueryRequest::at(0, q.to_vec(), vec![fx.medoid]));
    }
    let after = engine.run_to_completion();
    for o in after.outcomes.iter().skip(report.outcomes.len()) {
        assert_eq!(o.state, SessionState::Completed);
        assert!(!o.results.is_empty());
        for n in &o.results {
            assert!(
                !deleted.contains(&n.id),
                "query {} surfaced tombstoned vertex {}",
                o.id,
                n.id
            );
        }
    }
    // Compaction erases the old footprint and drops tombstone edges from
    // the staged overlay.
    let compaction = engine.compact().expect("mutable deployment");
    assert!(compaction.blocks_erased > 0);
    assert!(compaction.pages_programmed > 0);
    assert!(compaction.duration_ns > 0);
    let lc = &engine.deployment().prepared().luncsr;
    assert_eq!(lc.tombstone_count(), deleted.len());
}

#[test]
fn update_latency_is_visible_in_makespan() {
    // The same closed query load, with and without a burst of inserts:
    // the mixed run must advance the simulated clock further (tPROG and
    // bookkeeping are charged), and the update outcomes must carry
    // non-decreasing completion times in admission order.
    let (fx, deploy) = churn_fixture();
    let queries_only = {
        let (fx2, deploy2) = churn_fixture();
        let mut engine = ServeEngine::with_deployment(&fx2.config, ServeConfig::default(), deploy2);
        for (_, q) in fx2.queries.iter() {
            engine.submit(QueryRequest::at(0, q.to_vec(), vec![fx2.medoid]));
        }
        engine.run_to_completion()
    };
    let mut engine = ServeEngine::with_deployment(&fx.config, ServeConfig::default(), deploy);
    for (_, q) in fx.queries.iter() {
        engine.submit(QueryRequest::at(0, q.to_vec(), vec![fx.medoid]));
    }
    for id in N_BASE..N_FULL {
        engine.submit_update(UpdateRequest::insert_at(
            0,
            fx.full.vector(id as VectorId).to_vec(),
        ));
    }
    let mixed = engine.run_to_completion();
    assert!(
        mixed.makespan_ns > queries_only.makespan_ns,
        "updates must occupy the device: {} !> {}",
        mixed.makespan_ns,
        queries_only.makespan_ns
    );
    let times: Vec<u64> = mixed
        .update_outcomes
        .iter()
        .map(|o| o.completed_ns)
        .collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]));
}
