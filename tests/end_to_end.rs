//! End-to-end integration: every ANNS algorithm → traces → static
//! scheduling → NDSEARCH engine, with recall and report sanity checks.

use ndsearch::anns::hcnng::{Hcnng, HcnngParams};
use ndsearch::anns::hnsw::{Hnsw, HnswParams};
use ndsearch::anns::index::{GraphAnnsIndex, SearchParams};
use ndsearch::anns::togg::{Togg, ToggParams};
use ndsearch::anns::vamana::{Vamana, VamanaParams};
use ndsearch::core::config::NdsConfig;
use ndsearch::core::engine::NdsEngine;
use ndsearch::core::pipeline::Prepared;
use ndsearch::vector::recall::{ground_truth, recall_at_k};
use ndsearch::vector::synthetic::DatasetSpec;
use ndsearch::vector::DistanceKind;

fn pipeline(index: &dyn GraphAnnsIndex, min_recall: f64) {
    let (base, queries) = DatasetSpec::sift_scaled(700, 24).build_pair();
    let params = SearchParams::new(10, 80, DistanceKind::L2);
    let out = index.search_batch(&base, &queries, &params);

    // Quality.
    let gt = ground_truth(&base, &queries, 10, DistanceKind::L2);
    let recall = recall_at_k(&gt, &out.id_lists(), 10);
    assert!(
        recall >= min_recall,
        "{}: recall {recall} below {min_recall}",
        index.algorithm()
    );

    // Architecture replay.
    let config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
    let prepared = Prepared::stage(&config, index.base_graph(), &base, &out.trace);
    let report = NdsEngine::new(&config).run(&prepared);
    assert_eq!(report.queries, 24);
    assert!(report.total_ns > 0);
    assert_eq!(report.trace_len, out.trace.total_visited());
    assert!(report.stats.page_reads > 0);
    assert!(report.breakdown.total_ns() == report.total_ns);
    assert!(report.lun_coverage > 0.0);
}

#[test]
fn hnsw_end_to_end() {
    let base = DatasetSpec::sift_scaled(700, 24).build();
    let index = Hnsw::build(&base, HnswParams::default());
    pipeline(&index, 0.85);
}

#[test]
fn diskann_end_to_end() {
    let base = DatasetSpec::sift_scaled(700, 24).build();
    let index = Vamana::build(&base, VamanaParams::default());
    pipeline(&index, 0.85);
}

#[test]
fn hcnng_end_to_end() {
    let base = DatasetSpec::sift_scaled(700, 24).build();
    let index = Hcnng::build(&base, HcnngParams::default());
    pipeline(&index, 0.75);
}

#[test]
fn togg_end_to_end() {
    let base = DatasetSpec::sift_scaled(700, 24).build();
    let index = Togg::build(&base, ToggParams::default());
    pipeline(&index, 0.80);
}
