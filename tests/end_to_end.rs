//! End-to-end integration: every ANNS algorithm → traces → static
//! scheduling → NDSEARCH engine, with recall and report sanity checks —
//! plus the 4-shard scatter–gather cluster at the same recall gates.

use ndsearch::anns::hcnng::{Hcnng, HcnngParams};
use ndsearch::anns::hnsw::{Hnsw, HnswParams};
use ndsearch::anns::index::{GraphAnnsIndex, MutableIndex, SearchParams};
use ndsearch::anns::togg::{Togg, ToggParams};
use ndsearch::anns::trace::BatchTrace;
use ndsearch::anns::vamana::{Vamana, VamanaParams};
use ndsearch::core::cluster::{ClusterEngine, ClusterQueryRequest};
use ndsearch::core::config::NdsConfig;
use ndsearch::core::engine::NdsEngine;
use ndsearch::core::pipeline::Prepared;
use ndsearch::core::serve::{QueryRequest, ServeConfig, ServeEngine, SessionState, UpdateRequest};
use ndsearch::vector::recall::{exact_knn, ground_truth, recall_at_k};
use ndsearch::vector::shard::{ShardPlan, ShardPolicy};
use ndsearch::vector::synthetic::DatasetSpec;
use ndsearch::vector::{Dataset, DistanceKind, QuantSpec, VectorId};

fn pipeline(index: &dyn GraphAnnsIndex, min_recall: f64) {
    let (base, queries) = DatasetSpec::sift_scaled(700, 24).build_pair();
    let params = SearchParams::new(10, 80, DistanceKind::L2);
    let out = index.search_batch(&base, &queries, &params);

    // Quality.
    let gt = ground_truth(&base, &queries, 10, DistanceKind::L2);
    let recall = recall_at_k(&gt, &out.id_lists(), 10);
    assert!(
        recall >= min_recall,
        "{}: recall {recall} below {min_recall}",
        index.algorithm()
    );

    // Architecture replay.
    let config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
    let prepared = Prepared::stage(&config, index.base_graph(), &base, &out.trace);
    let report = NdsEngine::new(&config).run(&prepared);
    assert_eq!(report.queries, 24);
    assert!(report.total_ns > 0);
    assert_eq!(report.trace_len, out.trace.total_visited());
    assert!(report.stats.page_reads > 0);
    assert!(report.breakdown.total_ns() == report.total_ns);
    assert!(report.lun_coverage > 0.0);
}

#[test]
fn hnsw_end_to_end() {
    let base = DatasetSpec::sift_scaled(700, 24).build();
    let index = Hnsw::build(&base, HnswParams::default());
    pipeline(&index, 0.85);
}

#[test]
fn diskann_end_to_end() {
    let base = DatasetSpec::sift_scaled(700, 24).build();
    let index = Vamana::build(&base, VamanaParams::default());
    pipeline(&index, 0.85);
}

#[test]
fn hcnng_end_to_end() {
    let base = DatasetSpec::sift_scaled(700, 24).build();
    let index = Hcnng::build(&base, HcnngParams::default());
    pipeline(&index, 0.75);
}

#[test]
fn togg_end_to_end() {
    let base = DatasetSpec::sift_scaled(700, 24).build();
    let index = Togg::build(&base, ToggParams::default());
    pipeline(&index, 0.80);
}

/// Compressed-vector serving gate at 4x the corpus of the pipelines
/// above (700 -> 2800): beam traversal scores DRAM-resident codes, only
/// the final `rerank_depth` candidates pay exact-distance flash reads,
/// and recall must clear the same bar as the full-precision gates.
fn quantized_pipeline(
    graph: &ndsearch::graph::Csr,
    entry: VectorId,
    base: &Dataset,
    min_recall: f64,
    label: &str,
) {
    let queries = DatasetSpec::sift_scaled(2800, 24).build_pair().1;
    let mut config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
    config.ecc.hard_decision_failure_prob = 0.0;
    config.quantization = QuantSpec::Int8;
    let prepared = Prepared::stage(&config, graph, base, &BatchTrace::default());
    let serve = ServeConfig {
        k: 10,
        beam_width: 80,
        rerank_depth: 40,
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(&config, serve, &prepared, base, graph);
    let codes = engine
        .deployment()
        .codes()
        .expect("quantization staged a code table");
    assert_eq!(codes.len(), base.len());
    for (_, q) in queries.iter() {
        engine.submit(QueryRequest::at(0, q.to_vec(), vec![entry]));
    }
    let report = engine.run_to_completion();
    assert_eq!(
        report.completed(),
        queries.len(),
        "{label}: queries dropped"
    );
    let ids: Vec<Vec<VectorId>> = report
        .outcomes
        .iter()
        .map(|o| o.results.iter().map(|n| n.id).collect())
        .collect();
    let gt = ground_truth(base, &queries, 10, DistanceKind::L2);
    let recall = recall_at_k(&gt, &ids, 10);
    assert!(
        recall >= min_recall,
        "{label}: quantized+rerank recall {recall} below {min_recall} at n=2800"
    );
    // Traversal stayed in DRAM: flash reads come only from the exact
    // rerank of the final candidates.
    assert_eq!(
        report.breakdown.nand_read_ns, 0,
        "{label}: hops touched NAND"
    );
    assert!(
        report.breakdown.rerank_ns > 0,
        "{label}: rerank charged no flash time"
    );
    assert!(report.stats.page_reads > 0, "{label}: rerank read no pages");
    assert!(
        report.breakdown.dram_ns > 0,
        "{label}: code scoring charged no DRAM"
    );
}

#[test]
fn hnsw_quantized_end_to_end() {
    let base = DatasetSpec::sift_scaled(2800, 24).build();
    let index = Hnsw::build(&base, HnswParams::default());
    let entry = index.entry_point();
    quantized_pipeline(index.base_graph(), entry, &base, 0.85, "HNSW");
}

#[test]
fn vamana_quantized_end_to_end() {
    let base = DatasetSpec::sift_scaled(2800, 24).build();
    let index = Vamana::build(&base, VamanaParams::default());
    let entry = index.medoid();
    quantized_pipeline(index.base_graph(), entry, &base, 0.85, "Vamana");
}

/// Regression: QPT DRAM accounting must not silently revert to
/// full-precision record sizes after a deployment churns (inserts,
/// deletes, compaction) and a successor engine is staged from it. PQ on
/// sift makes the gap unmistakable: 16-byte codes vs 128-byte stored
/// rows, so a reverted table admits strictly fewer residents under the
/// same DRAM budget.
#[test]
fn churned_quantized_deployment_keeps_code_byte_qpt_accounting() {
    use ndsearch::core::deploy::Deployment;
    use ndsearch::core::qpt::QueryPropertyTable;

    let (base, extra) = DatasetSpec::sift_scaled(400, 24).build_pair();
    let index = Vamana::build(&base, VamanaParams::default());
    let medoid = index.medoid();
    let mut config = NdsConfig::scaled_for(800, base.stored_vector_bytes());
    config.ecc.hard_decision_failure_prob = 0.0;
    config.quantization = QuantSpec::Pq { m: 16, bits: 8 };
    let deploy = Deployment::stage(&config, Box::new(index), base.clone());
    let code_bytes = deploy.codes().expect("codes staged").code_bytes();
    assert_eq!(code_bytes, 16);

    // Budget sized in *code* records: a full-precision record is
    // 112 bytes larger, so the reverted accounting caps residency lower.
    let residents = 10usize;
    let quant_record = QueryPropertyTable::new(1, code_bytes, config.result_list_entries);
    let full_record =
        QueryPropertyTable::new(1, base.stored_vector_bytes(), config.result_list_entries);
    let budget = quant_record.record_bytes() * residents as u64;
    assert!(
        full_record.max_resident(budget) < residents,
        "gap too small to detect a revert"
    );
    let serve = ServeConfig {
        k: 10,
        beam_width: 48,
        max_inflight: 64,
        rerank_depth: 24,
        qpt_dram_budget_bytes: budget,
        ..ServeConfig::default()
    };

    // Churn: queries racing inserts and deletes, then compaction.
    let mut engine = ServeEngine::with_deployment(&config, serve.clone(), deploy);
    assert_eq!(engine.max_inflight(), residents, "pre-churn QPT accounting");
    for (i, (_, q)) in extra.iter().take(8).enumerate() {
        engine.submit(QueryRequest::at(i as u64 * 1_000, q.to_vec(), vec![medoid]));
    }
    for i in 0..12u32 {
        engine.submit_update(UpdateRequest::insert_at(
            u64::from(i) * 800,
            extra.vector(i % extra.len() as u32).to_vec(),
        ));
        engine.submit_update(UpdateRequest::delete_at(u64::from(i) * 900 + 50, i * 7));
    }
    let report = engine.run_to_completion();
    assert_eq!(report.completed(), 8);
    assert!(report.updates_completed() > 0);
    let compaction = engine.compact().expect("mutable deployment compacts");
    assert!(compaction.blocks_erased > 0);

    // The churned deployment still carries one code per (grown) row...
    let deploy = engine.into_deployment();
    let codes = deploy.codes().expect("codes survive churn").clone();
    assert_eq!(codes.len(), deploy.dataset().len());
    assert_eq!(codes.code_bytes(), code_bytes);

    // ...and a successor engine staged from it must derive QPT records
    // from code bytes, not the full-precision rows.
    let mut engine = ServeEngine::with_deployment(&config, serve, deploy);
    assert_eq!(
        engine.max_inflight(),
        residents,
        "post-churn QPT accounting reverted to full-precision records"
    );
    for (i, (_, q)) in extra.iter().take(8).enumerate() {
        engine.submit(QueryRequest::at(i as u64 * 1_000, q.to_vec(), vec![medoid]));
    }
    let report = engine.run_to_completion();
    assert_eq!(report.completed(), 8);
    assert!(report.breakdown.rerank_ns > 0, "post-churn rerank inactive");
}

/// Serves the benchmark queries through a 4-shard scatter–gather cluster
/// and gates the merged recall at the same threshold as the single-device
/// pipeline above.
fn cluster_pipeline(
    build: impl Fn(&Dataset) -> (Box<dyn MutableIndex>, VectorId),
    min_recall: f64,
    label: &str,
) {
    let (base, queries) = DatasetSpec::sift_scaled(700, 24).build_pair();
    let mut config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
    config.ecc.hard_decision_failure_prob = 0.0;
    let serve = ServeConfig {
        k: 10,
        beam_width: 80,
        ..ServeConfig::default()
    };
    let plan = ShardPlan::partition(base.len(), 4, ShardPolicy::BalancedSize, 0x5A);
    let mut cluster = ClusterEngine::stage(&config, serve, plan, &base, build);
    for (_, q) in queries.iter() {
        cluster.submit(ClusterQueryRequest::at(0, q.to_vec()));
    }
    let report = cluster.run_to_completion();
    assert_eq!(
        report.completed(),
        queries.len(),
        "{label}: queries dropped"
    );

    let merged: Vec<Vec<VectorId>> = report
        .outcomes
        .iter()
        .map(|o| o.results.iter().map(|n| n.id).collect())
        .collect();
    let gt = ground_truth(&base, &queries, 10, DistanceKind::L2);
    let recall = recall_at_k(&gt, &merged, 10);
    assert!(
        recall >= min_recall,
        "{label}: 4-shard recall {recall} below {min_recall}"
    );

    // The cluster really fanned out: every shard served every query and
    // the balanced partition kept the load near-even.
    assert_eq!(report.shards.len(), 4);
    for s in &report.shards {
        let served: usize = s.replicas.iter().map(|r| r.report.completed()).sum();
        assert_eq!(served, queries.len());
        assert!(s.hops > 0);
        assert!(s.replicas.iter().any(|r| r.report.stats.page_reads > 0));
    }
    assert!(report.load_imbalance() >= 1.0);
    assert!(report.qps() > 0.0);
    assert!(report.latency().p99_ns >= report.latency().p50_ns);
}

#[test]
fn hnsw_cluster_end_to_end() {
    cluster_pipeline(
        |ds| {
            let index = Hnsw::build(ds, HnswParams::default());
            let entry = index.entry_point();
            (Box::new(index) as Box<dyn MutableIndex>, entry)
        },
        0.85,
        "HNSW",
    );
}

#[test]
fn vamana_cluster_end_to_end() {
    cluster_pipeline(
        |ds| {
            let index = Vamana::build(ds, VamanaParams::default());
            let entry = index.medoid();
            (Box::new(index) as Box<dyn MutableIndex>, entry)
        },
        0.85,
        "Vamana",
    );
}

/// Mixed query + update churn on a 4-shard cluster: ingest a tail of the
/// corpus and tombstone part of the head while queries are in flight,
/// then gate recall on the *live* set (inserted vectors present, deleted
/// vectors excluded) against exact search over it.
#[test]
fn cluster_churn_mixed_queries_and_updates() {
    const N_FULL: usize = 700;
    const N_BASE: usize = 600;
    let (full, queries) = DatasetSpec::sift_scaled(N_FULL, 20).build_pair();
    let mut base = Dataset::new(full.dim());
    for (_, v) in full.iter().take(N_BASE) {
        base.try_push(v).unwrap();
    }
    base.set_stored_vector_bytes(full.stored_vector_bytes());
    let mut config = NdsConfig::scaled_for(N_FULL * 2, full.stored_vector_bytes());
    config.ecc.hard_decision_failure_prob = 0.0;
    let serve = ServeConfig {
        k: 10,
        beam_width: 80,
        ..ServeConfig::default()
    };
    let plan = ShardPlan::partition(N_BASE, 4, ShardPolicy::BalancedSize, 0x5A);
    let mut cluster = ClusterEngine::stage(&config, serve, plan, &base, |ds| {
        let index = Vamana::build(ds, VamanaParams::default());
        let entry = index.medoid();
        (Box::new(index) as Box<dyn MutableIndex>, entry)
    });

    // ---- Churn: ingest the tail, tombstone every 9th base vector,
    // queries interleaved throughout. ----
    let deleted: Vec<VectorId> = (0..N_BASE as VectorId).step_by(9).collect();
    for id in N_BASE..N_FULL {
        cluster.submit_update(UpdateRequest::insert_at(
            (id - N_BASE) as u64 * 1_000,
            full.vector(id as VectorId).to_vec(),
        ));
    }
    for (i, &d) in deleted.iter().enumerate() {
        cluster.submit_update(UpdateRequest::delete_at(i as u64 * 1_500, d));
    }
    for (i, (_, q)) in queries.iter().enumerate() {
        cluster.submit(ClusterQueryRequest::at(i as u64 * 2_000, q.to_vec()));
    }
    let churn = cluster.run_to_completion();
    assert_eq!(
        churn.updates_completed(),
        (N_FULL - N_BASE) + deleted.len(),
        "updates dropped"
    );
    assert_eq!(churn.completed(), queries.len());
    assert!(churn.update_totals().pages_programmed > 0);
    assert!(churn.update_totals().write_amplification() > 0.0);
    // Inserted ids extend the global space in submission order.
    assert_eq!(cluster.plan().len(), N_FULL);

    // ---- Post-churn wave: results must reflect the live set. ----
    for (_, q) in queries.iter() {
        cluster.submit(ClusterQueryRequest::at(0, q.to_vec()));
    }
    let after = cluster.run_to_completion();
    let wave = &after.outcomes[queries.len()..];
    let gt: Vec<Vec<VectorId>> = queries
        .iter()
        .map(|(_, q)| {
            exact_knn(&full, q, full.len(), DistanceKind::L2)
                .into_iter()
                .filter(|n| !deleted.contains(&n.id))
                .take(10)
                .map(|n| n.id)
                .collect()
        })
        .collect();
    let mut hits = 0usize;
    for (o, want) in wave.iter().zip(&gt) {
        assert_eq!(o.state, SessionState::Completed);
        assert!(!o.results.is_empty());
        for n in &o.results {
            assert!(
                !deleted.contains(&n.id),
                "query {} surfaced tombstoned vertex {}",
                o.id,
                n.id
            );
            if want.contains(&n.id) {
                hits += 1;
            }
        }
    }
    let recall = hits as f64 / (wave.len() * 10) as f64;
    assert!(
        recall >= 0.80,
        "post-churn 4-shard recall {recall} below 0.80"
    );
}
