//! Property test: the data-parallel round executor is bit-identical at
//! any thread count.
//!
//! Over randomized datasets, scheduling toggles, ECC failure rates and
//! seeds, both the batch engine and the serving scheduler must produce
//! byte-for-byte the same report — latency breakdown, `FlashStats`,
//! speculation counters, per-query outcomes — at `exec_threads` ∈
//! {1, 2, 8}. `exec_threads = 1` is the exact legacy sequential path, so
//! this pins the parallel fan-out to the serial semantics.
//!
//! Uses the vendored proptest's deterministic runner directly (engine
//! runs are too heavy for the default 256-case count).

use proptest::prelude::*;
use proptest::test_runner::{Config, TestRng};

use ndsearch::anns::index::{GraphAnnsIndex, MutableIndex, SearchParams};
use ndsearch::anns::trace::BatchTrace;
use ndsearch::anns::vamana::{Vamana, VamanaParams};
use ndsearch::core::cluster::{
    ClusterEngine, ClusterQueryRequest, FailureSchedule, ReplicaPolicy, ReplicationConfig,
};
use ndsearch::core::config::NdsConfig;
use ndsearch::core::deploy::Deployment;
use ndsearch::core::engine::NdsEngine;
use ndsearch::core::pipeline::Prepared;
use ndsearch::core::serve::{QueryRequest, ServeConfig, ServeEngine, UpdateRequest};
use ndsearch::flash::timing::Nanos;
use ndsearch::vector::quant::QuantSpec;
use ndsearch::vector::shard::{ShardPlan, ShardPolicy};
use ndsearch::vector::synthetic::DatasetSpec;
use ndsearch::vector::{Dataset, VectorId};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn random_config(rng: &mut TestRng, n: usize, vector_bytes: usize) -> NdsConfig {
    let mut config = NdsConfig::scaled_for(n, vector_bytes);
    config.seed = (0u64..u64::MAX).generate(rng);
    config.ecc.seed = (0u64..u64::MAX).generate(rng);
    // Fault injection on in most cases: the counter-indexed ECC streams
    // are exactly the state that must not depend on worker scheduling.
    config.ecc.hard_decision_failure_prob = [0.0, 0.05, 0.3][(0usize..3).generate(rng)];
    config.scheduling.dynamic_allocating = any::<bool>().generate(rng);
    config.scheduling.speculative = any::<bool>().generate(rng);
    config.spec_budget_factor = (0.5f64..2.0).generate(rng);
    // Refresh is deliberately left off: it mutates a private LUNCSR copy
    // mid-run, so the engine forces the inline executor and the
    // thread-count comparison would be vacuous (engine-level tests cover
    // refresh determinism separately).
    config.refresh_read_threshold = 0;
    config
}

#[test]
fn engine_report_bit_identical_across_thread_counts() {
    proptest::test_runner::run(
        Config { cases: 4 },
        "engine_report_bit_identical_across_thread_counts",
        |rng| {
            let n = (250usize..450).generate(rng);
            let q = (4usize..12).generate(rng);
            let (base, queries) = DatasetSpec::sift_scaled(n, q).build_pair();
            let index = Vamana::build(&base, VamanaParams::default());
            let out = index.search_batch(&base, &queries, &SearchParams::default());
            let mut config = random_config(rng, base.len(), base.stored_vector_bytes());
            config.max_batch_inflight = (2usize..64).generate(rng);
            let reports: Vec<_> = THREAD_COUNTS
                .iter()
                .map(|&threads| {
                    let mut c = config.clone();
                    c.exec_threads = threads;
                    let prepared = Prepared::stage(&c, index.base_graph(), &base, &out.trace);
                    NdsEngine::new(&c).run(&prepared)
                })
                .collect();
            prop_assert_eq!(
                &reports[0],
                &reports[1],
                "engine diverged between 1 and 2 threads"
            );
            prop_assert_eq!(
                &reports[0],
                &reports[2],
                "engine diverged between 1 and 8 threads"
            );
            Ok(())
        },
    );
}

/// Mixed query+update serving: updates mutate the deployment between
/// rounds while hop/LUN jobs read round-boundary snapshots, so the full
/// report — query outcomes, update outcomes, write-path totals — must be
/// bit-identical at `exec_threads` ∈ {1, 4}.
#[test]
fn mixed_update_serving_bit_identical_across_thread_counts() {
    proptest::test_runner::run(
        Config { cases: 3 },
        "mixed_update_serving_bit_identical_across_thread_counts",
        |rng| {
            let n = (250usize..400).generate(rng);
            let q = (4usize..10).generate(rng);
            let (base, queries) = DatasetSpec::sift_scaled(n, q).build_pair();
            let index = Vamana::build(&base, VamanaParams::default());
            let medoid = index.medoid();
            // Headroom for the inserts.
            let mut config = random_config(rng, n * 2, base.stored_vector_bytes());
            config.refresh_read_threshold = 0;
            let serve = ServeConfig {
                max_inflight: (2usize..8).generate(rng),
                beam_width: (16usize..48).generate(rng),
                max_updates_per_round: (1usize..4).generate(rng),
                ..ServeConfig::default()
            };
            let interarrival = (0u64..2_000).generate(rng);
            let n_inserts = (4usize..12).generate(rng);
            let n_deletes = (1usize..6).generate(rng);
            let reports: Vec<_> = [1usize, 4]
                .iter()
                .map(|&threads| {
                    let mut c = config.clone();
                    c.exec_threads = threads;
                    let deploy = Deployment::stage(&c, Box::new(index.clone()), base.clone());
                    let mut engine = ServeEngine::with_deployment(&c, serve.clone(), deploy);
                    for (i, (_, qv)) in queries.iter().enumerate() {
                        engine.submit(QueryRequest::at(
                            i as Nanos * interarrival,
                            qv.to_vec(),
                            vec![medoid],
                        ));
                    }
                    for i in 0..n_inserts {
                        engine.submit_update(UpdateRequest::insert_at(
                            i as Nanos * interarrival + 500,
                            queries.vector((i % queries.len()) as u32).to_vec(),
                        ));
                    }
                    for i in 0..n_deletes {
                        engine.submit_update(UpdateRequest::delete_at(
                            i as Nanos * interarrival + 900,
                            (i * 7) as u32 % n as u32,
                        ));
                    }
                    engine.run_to_completion()
                })
                .collect();
            prop_assert_eq!(
                &reports[0],
                &reports[1],
                "mixed serving diverged between 1 and 4 threads"
            );
            prop_assert!(reports[0].updates_completed() > 0);
            Ok(())
        },
    );
}

/// Compressed-vector serving (codes in DRAM + exact flash rerank) with
/// mixed updates: quantized round costs are derived from hop traces in
/// slot order and the rerank tail rescores through the same dispatched
/// kernels, so the full report — outcomes, rerank latency bucket,
/// page-read stats — must be bit-identical at `exec_threads` ∈ {1, 4}
/// for both code families.
#[test]
fn quantized_serving_bit_identical_across_thread_counts() {
    proptest::test_runner::run(
        Config { cases: 3 },
        "quantized_serving_bit_identical_across_thread_counts",
        |rng| {
            let n = (250usize..400).generate(rng);
            let q = (4usize..10).generate(rng);
            let (base, queries) = DatasetSpec::sift_scaled(n, q).build_pair();
            let index = Vamana::build(&base, VamanaParams::default());
            let medoid = index.medoid();
            let mut config = random_config(rng, n * 2, base.stored_vector_bytes());
            config.refresh_read_threshold = 0;
            config.quantization = if any::<bool>().generate(rng) {
                QuantSpec::Int8
            } else {
                QuantSpec::Pq { m: 16, bits: 8 }
            };
            let serve = ServeConfig {
                max_inflight: (2usize..8).generate(rng),
                beam_width: (16usize..48).generate(rng),
                rerank_depth: (8usize..48).generate(rng),
                max_updates_per_round: (1usize..4).generate(rng),
                ..ServeConfig::default()
            };
            let interarrival = (0u64..2_000).generate(rng);
            let n_inserts = (4usize..10).generate(rng);
            let reports: Vec<_> = [1usize, 4]
                .iter()
                .map(|&threads| {
                    let mut c = config.clone();
                    c.exec_threads = threads;
                    let deploy = Deployment::stage(&c, Box::new(index.clone()), base.clone());
                    let mut engine = ServeEngine::with_deployment(&c, serve.clone(), deploy);
                    for (i, (_, qv)) in queries.iter().enumerate() {
                        engine.submit(QueryRequest::at(
                            i as Nanos * interarrival,
                            qv.to_vec(),
                            vec![medoid],
                        ));
                    }
                    for i in 0..n_inserts {
                        engine.submit_update(UpdateRequest::insert_at(
                            i as Nanos * interarrival + 500,
                            queries.vector((i % queries.len()) as u32).to_vec(),
                        ));
                    }
                    engine.run_to_completion()
                })
                .collect();
            prop_assert_eq!(
                &reports[0],
                &reports[1],
                "quantized serving diverged between 1 and 4 threads"
            );
            prop_assert_eq!(reports[0].completed(), q);
            prop_assert!(
                reports[0].breakdown.rerank_ns > 0,
                "quantized completions must charge rerank flash reads"
            );
            prop_assert_eq!(
                reports[0].breakdown.nand_read_ns,
                0,
                "quantized traversal must not touch NAND"
            );
            Ok(())
        },
    );
}

/// Quantized cluster serving: each shard trains its own code table at
/// staging, so the merged report must be bit-identical at
/// `exec_threads` ∈ {1, 4} *and* invariant under shard step order — the
/// same contract as full-precision scatter–gather.
#[test]
fn quantized_cluster_bit_identical_across_thread_counts_and_shard_order() {
    proptest::test_runner::run(
        Config { cases: 2 },
        "quantized_cluster_bit_identical_across_thread_counts_and_shard_order",
        |rng| {
            let n = (200usize..320).generate(rng);
            let q = (4usize..9).generate(rng);
            let (base, queries) = DatasetSpec::sift_scaled(n, q).build_pair();
            let mut config = random_config(rng, n * 2, base.stored_vector_bytes());
            config.refresh_read_threshold = 0;
            config.quantization = if any::<bool>().generate(rng) {
                QuantSpec::Int8
            } else {
                QuantSpec::Pq { m: 12, bits: 6 }
            };
            let serve = ServeConfig {
                max_inflight: (2usize..8).generate(rng),
                beam_width: (16usize..48).generate(rng),
                rerank_depth: (8usize..32).generate(rng),
                max_updates_per_round: (1usize..4).generate(rng),
                ..ServeConfig::default()
            };
            let plan_seed = (0u64..u64::MAX).generate(rng);
            let interarrival = (0u64..2_000).generate(rng);
            let n_inserts = (3usize..8).generate(rng);
            let shards = 4usize;

            let builder = |ds: &Dataset| {
                let index = Vamana::build(ds, VamanaParams::default());
                let entry = index.medoid();
                (Box::new(index) as Box<dyn MutableIndex>, entry)
            };
            let run = |threads: usize, order: &[usize]| {
                let mut c = config.clone();
                c.exec_threads = threads;
                let plan = ShardPlan::partition(n, shards, ShardPolicy::BalancedSize, plan_seed);
                let mut cluster = ClusterEngine::stage(&c, serve.clone(), plan, &base, builder);
                for (i, (_, qv)) in queries.iter().enumerate() {
                    cluster.submit(ClusterQueryRequest::at(
                        i as Nanos * interarrival,
                        qv.to_vec(),
                    ));
                }
                for i in 0..n_inserts {
                    cluster.submit_update(UpdateRequest::insert_at(
                        i as Nanos * interarrival + 500,
                        queries.vector((i % queries.len()) as u32).to_vec(),
                    ));
                }
                cluster.run_to_completion_ordered(order)
            };
            let identity: Vec<usize> = (0..shards).collect();
            let reference = run(1, &identity);
            prop_assert_eq!(reference.completed(), q);
            prop_assert_eq!(
                &reference,
                &run(4, &identity),
                "quantized cluster diverged between 1 and 4 threads"
            );
            prop_assert_eq!(
                &reference,
                &run(1, &[3usize, 1, 0, 2]),
                "quantized cluster diverged under permuted shard order"
            );
            prop_assert_eq!(
                &reference,
                &run(4, &[2usize, 3, 0, 1]),
                "quantized cluster diverged under 4 threads + permuted order"
            );
            Ok(())
        },
    );
}

/// Sharded scatter–gather serving: every shard engine is bit-identical
/// at any thread count and shards share no state, so the full cluster
/// report — merged outcomes, update outcomes, every per-shard breakdown
/// (wall-clock fields excluded by `ServeReport`'s equality) — must be
/// bit-identical at `exec_threads` ∈ {1, 4} *and* invariant under the
/// order shards are stepped in.
#[test]
fn cluster_report_bit_identical_across_thread_counts_and_shard_order() {
    proptest::test_runner::run(
        Config { cases: 2 },
        "cluster_report_bit_identical_across_thread_counts_and_shard_order",
        |rng| {
            let n = (200usize..320).generate(rng);
            let q = (4usize..9).generate(rng);
            let (base, queries) = DatasetSpec::sift_scaled(n, q).build_pair();
            let mut config = random_config(rng, n * 2, base.stored_vector_bytes());
            config.refresh_read_threshold = 0;
            let serve = ServeConfig {
                max_inflight: (2usize..8).generate(rng),
                beam_width: (16usize..48).generate(rng),
                max_updates_per_round: (1usize..4).generate(rng),
                ..ServeConfig::default()
            };
            let policy = if any::<bool>().generate(rng) {
                ShardPolicy::Hash
            } else {
                ShardPolicy::BalancedSize
            };
            let plan_seed = (0u64..u64::MAX).generate(rng);
            let interarrival = (0u64..2_000).generate(rng);
            let n_inserts = (3usize..10).generate(rng);
            let n_deletes = (1usize..6).generate(rng);
            let shards = 4usize;

            let builder = |ds: &Dataset| {
                let index = Vamana::build(ds, VamanaParams::default());
                let entry = index.medoid();
                (Box::new(index) as Box<dyn MutableIndex>, entry)
            };
            let run = |threads: usize, order: &[usize]| {
                let mut c = config.clone();
                c.exec_threads = threads;
                let plan = ShardPlan::partition(n, shards, policy, plan_seed);
                let mut cluster = ClusterEngine::stage(&c, serve.clone(), plan, &base, builder);
                for (i, (_, qv)) in queries.iter().enumerate() {
                    cluster.submit(ClusterQueryRequest::at(
                        i as Nanos * interarrival,
                        qv.to_vec(),
                    ));
                }
                for i in 0..n_inserts {
                    cluster.submit_update(UpdateRequest::insert_at(
                        i as Nanos * interarrival + 500,
                        queries.vector((i % queries.len()) as u32).to_vec(),
                    ));
                }
                for i in 0..n_deletes {
                    cluster.submit_update(UpdateRequest::delete_at(
                        i as Nanos * interarrival + 900,
                        (i * 7) as VectorId % n as VectorId,
                    ));
                }
                cluster.run_to_completion_ordered(order)
            };
            let identity: Vec<usize> = (0..shards).collect();
            let reference = run(1, &identity);
            prop_assert!(reference.updates_completed() > 0);
            prop_assert_eq!(
                &reference,
                &run(4, &identity),
                "cluster diverged between 1 and 4 threads"
            );
            for order in [[3usize, 1, 0, 2], [2, 3, 0, 1]] {
                prop_assert_eq!(
                    &reference,
                    &run(1, &order),
                    "cluster diverged under shard step order {:?}",
                    order
                );
            }
            prop_assert_eq!(
                &reference,
                &run(4, &[1usize, 0, 3, 2]),
                "cluster diverged under 4 threads + permuted shard order"
            );
            Ok(())
        },
    );
}

/// Replicated serving under a failure schedule: failure events and
/// hedges fire at round boundaries from simulated clocks in fixed
/// schedule/submission order, so a mid-run replica kill plus an ECC
/// storm must reproduce the full cluster report — failover re-seeds,
/// hedge races, availability, per-replica breakdowns — bit-identically
/// at `exec_threads` ∈ {1, 4} and under permuted shard step orders.
#[test]
fn replicated_failover_bit_identical_across_thread_counts_and_shard_order() {
    proptest::test_runner::run(
        Config { cases: 2 },
        "replicated_failover_bit_identical_across_thread_counts_and_shard_order",
        |rng| {
            let n = (200usize..320).generate(rng);
            let q = (5usize..9).generate(rng);
            let (base, queries) = DatasetSpec::sift_scaled(n, q).build_pair();
            let mut config = random_config(rng, n * 2, base.stored_vector_bytes());
            config.refresh_read_threshold = 0;
            let serve = ServeConfig {
                max_inflight: (2usize..8).generate(rng),
                beam_width: (16usize..48).generate(rng),
                ..ServeConfig::default()
            };
            let plan_seed = (0u64..u64::MAX).generate(rng);
            let interarrival = (100u64..2_000).generate(rng);
            let shards = 4usize;
            let policy = if any::<bool>().generate(rng) {
                ReplicaPolicy::RoundRobin
            } else {
                ReplicaPolicy::Hedged {
                    delay_ns: (10_000u64..200_000).generate(rng),
                }
            };
            // Kill one replica almost immediately (so sessions are still
            // in flight and must fail over) and storm another mid-run.
            let kill_shard = (0usize..shards).generate(rng);
            let storm_at = (0u64..100_000).generate(rng);
            let failures = FailureSchedule::new().kill(1, kill_shard, 0).ecc_storm(
                storm_at,
                (kill_shard + 1) % shards,
                1,
                0.9,
            );
            let replication = ReplicationConfig::replicated(2)
                .with_policy(policy)
                .with_failures(failures);

            let builder = |ds: &Dataset| {
                let index = Vamana::build(ds, VamanaParams::default());
                let entry = index.medoid();
                (Box::new(index) as Box<dyn MutableIndex>, entry)
            };
            let run = |threads: usize, order: &[usize]| {
                let mut c = config.clone();
                c.exec_threads = threads;
                // BalancedSize never leaves a shard empty, so the killed
                // replica always had sessions to fail over.
                let plan = ShardPlan::partition(n, shards, ShardPolicy::BalancedSize, plan_seed);
                let mut cluster = ClusterEngine::stage_replicated(
                    &c,
                    serve.clone(),
                    plan,
                    replication.clone(),
                    &base,
                    builder,
                );
                for (i, (_, qv)) in queries.iter().enumerate() {
                    cluster.submit(ClusterQueryRequest::at(
                        i as Nanos * interarrival,
                        qv.to_vec(),
                    ));
                }
                cluster.run_to_completion_ordered(order)
            };
            let identity: Vec<usize> = (0..shards).collect();
            let reference = run(1, &identity);
            prop_assert_eq!(reference.completed(), q, "failover lost sessions");
            prop_assert!(reference.failovers() > 0, "kill at t=1 must fail over");
            prop_assert!(reference.availability() > 0.0 && reference.availability() <= 1.0);
            prop_assert_eq!(
                &reference,
                &run(4, &identity),
                "replicated cluster diverged between 1 and 4 threads"
            );
            prop_assert_eq!(
                &reference,
                &run(1, &[3usize, 1, 0, 2]),
                "replicated cluster diverged under permuted shard order"
            );
            prop_assert_eq!(
                &reference,
                &run(4, &[2usize, 3, 0, 1]),
                "replicated cluster diverged under 4 threads + permuted order"
            );
            Ok(())
        },
    );
}

/// Scenario-engine traffic over the cluster tier: a multi-tenant bursty
/// trace (Zipfian hotspots, deadlines, inserts and deletes) served under
/// `SloPolicy::TenantFair` must produce a bit-identical cluster report at
/// `exec_threads` ∈ {1, 4}. SLO admission skips and per-tenant in-flight
/// accounting run on simulated counters only, so thread count must not
/// leak into shedding, fairness or the merged outcomes.
#[test]
fn scenario_traffic_with_tenant_fairness_bit_identical_across_thread_counts() {
    use ndsearch::core::serve::SloPolicy;
    use ndsearch::core::traffic::{ArrivalModel, QueryMix, Scenario, TenantProfile};

    let (base, queries) = DatasetSpec::sift_scaled(300, 8).build_pair();
    let mut config = NdsConfig::scaled_for(600, base.stored_vector_bytes());
    config.ecc.hard_decision_failure_prob = 0.0;
    config.refresh_read_threshold = 0;
    let serve = ServeConfig {
        max_inflight: 4,
        beam_width: 32,
        slo: SloPolicy::TenantFair {
            max_inflight_per_tenant: 2,
        },
        ..ServeConfig::default()
    };
    let scenario = Scenario {
        arrivals: ArrivalModel::Bursty {
            base_rate_qps: 20_000.0,
            spike_rate_qps: 400_000.0,
            spike_windows: vec![(0, 200_000)],
        },
        mix: QueryMix {
            zipf_theta: 1.1,
            delete_fraction: 0.4,
            tenants: vec![
                TenantProfile::new(0).weight(2.0).deadline_ns(5_000_000),
                TenantProfile::new(1).update_fraction(0.5),
                TenantProfile::new(2).k(3),
            ],
        },
        events: 90,
        start_ns: 0,
        seed: 0x7EA,
    };
    let trace = scenario.generate(queries.len(), queries.len(), 0..40);
    assert!(trace.updates() > 0, "mix must exercise the update path");

    let builder = |ds: &Dataset| {
        let index = Vamana::build(ds, VamanaParams::default());
        let entry = index.medoid();
        (Box::new(index) as Box<dyn MutableIndex>, entry)
    };
    let run = |threads: usize| {
        let mut c = config.clone();
        c.exec_threads = threads;
        let plan = ShardPlan::partition(300, 4, ShardPolicy::BalancedSize, 0x5A);
        let mut cluster = ClusterEngine::stage(&c, serve.clone(), plan, &base, builder);
        trace.submit_cluster(&mut cluster, &queries, &queries);
        cluster.run_to_completion()
    };
    let reference = run(1);
    assert_eq!(reference.outcomes.len(), trace.queries());
    assert_eq!(reference.update_outcomes.len(), trace.updates());
    assert_eq!(
        reference,
        run(4),
        "scenario traffic diverged between 1 and 4 threads"
    );
}

#[test]
fn serving_report_bit_identical_across_thread_counts() {
    proptest::test_runner::run(
        Config { cases: 4 },
        "serving_report_bit_identical_across_thread_counts",
        |rng| {
            let n = (250usize..450).generate(rng);
            let q = (4usize..12).generate(rng);
            let (base, queries) = DatasetSpec::sift_scaled(n, q).build_pair();
            let index = Vamana::build(&base, VamanaParams::default());
            let mut config = random_config(rng, base.len(), base.stored_vector_bytes());
            // The serving path never mutates the LUNCSR.
            config.refresh_read_threshold = 0;
            let serve = ServeConfig {
                max_inflight: (2usize..8).generate(rng),
                beam_width: (16usize..48).generate(rng),
                ..ServeConfig::default()
            };
            let interarrival = (0u64..2_000).generate(rng);
            let prepared =
                Prepared::stage(&config, index.base_graph(), &base, &BatchTrace::default());
            let reports: Vec<_> = THREAD_COUNTS
                .iter()
                .map(|&threads| {
                    let mut c = config.clone();
                    c.exec_threads = threads;
                    let mut engine =
                        ServeEngine::new(&c, serve.clone(), &prepared, &base, index.base_graph());
                    for (i, (_, qv)) in queries.iter().enumerate() {
                        engine.submit(QueryRequest::at(
                            i as Nanos * interarrival,
                            qv.to_vec(),
                            vec![index.medoid()],
                        ));
                    }
                    engine.run_to_completion()
                })
                .collect();
            prop_assert_eq!(
                &reports[0],
                &reports[1],
                "serving diverged between 1 and 2 threads"
            );
            prop_assert_eq!(
                &reports[0],
                &reports[2],
                "serving diverged between 1 and 8 threads"
            );
            Ok(())
        },
    );
}
