//! Integration invariants on the two-level scheduling: the Fig. 14/15/16
//! ablation shapes, determinism, refresh consistency under load, and the
//! serving layer's batch scheduler (determinism, recall parity with
//! sequential execution, fairness under a bounded in-flight cap).

use ndsearch::anns::beam::{beam_search, VisitedSet};
use ndsearch::anns::index::{GraphAnnsIndex, SearchParams};
use ndsearch::anns::vamana::{Vamana, VamanaParams};
use ndsearch::core::config::{NdsConfig, SchedulingConfig};
use ndsearch::core::engine::NdsEngine;
use ndsearch::core::pipeline::Prepared;
use ndsearch::core::report::NdsReport;
use ndsearch::serve::{
    QueryRequest, ServeConfig, ServeEngine, ServeReport, SessionState, SloPolicy,
};
use ndsearch::vector::synthetic::DatasetSpec;
use ndsearch::vector::DistanceKind;

struct Fixture {
    base: ndsearch::vector::Dataset,
    graph: ndsearch::graph::Csr,
    trace: ndsearch::anns::trace::BatchTrace,
    config: NdsConfig,
}

fn fixture() -> Fixture {
    let (base, queries) = DatasetSpec::deep_scaled(900, 96).build_pair();
    let index = Vamana::build(&base, VamanaParams::default());
    let out = index.search_batch(
        &base,
        &queries,
        &SearchParams::new(10, 64, DistanceKind::L2),
    );
    // The dense `tiny` geometry keeps several pages per plane at this
    // fixture size, which is the regime the scheduling techniques target
    // (a billion-vector corpus fills thousands of pages per plane).
    let mut config = NdsConfig {
        geometry: ndsearch::flash::geometry::FlashGeometry::tiny(),
        ..NdsConfig::default()
    };
    config.ecc.hard_decision_failure_prob = 0.0;
    Fixture {
        base,
        graph: index.base_graph().clone(),
        trace: out.trace,
        config,
    }
}

fn run(fx: &Fixture, sched: SchedulingConfig) -> NdsReport {
    let config = NdsConfig {
        scheduling: sched,
        ..fx.config.clone()
    };
    let prepared = Prepared::stage(&config, &fx.graph, &fx.base, &fx.trace);
    NdsEngine::new(&config).run(&prepared)
}

#[test]
fn ablation_ladder_is_monotone_in_throughput() {
    let fx = fixture();
    let mut last_qps = 0.0;
    for (label, sched) in SchedulingConfig::ablation_ladder() {
        let r = run(&fx, sched);
        let qps = r.qps();
        assert!(
            qps >= last_qps * 0.98, // tiny tolerance for modelling noise
            "{label} regressed: {qps} < {last_qps}"
        );
        last_qps = qps;
    }
}

#[test]
fn full_stack_gains_are_substantial() {
    let fx = fixture();
    let bare = run(&fx, SchedulingConfig::bare());
    let full = run(&fx, SchedulingConfig::full());
    let gain = full.qps() / bare.qps();
    assert!(
        gain > 1.5,
        "full stack should clearly beat Bare, gain = {gain}"
    );
}

#[test]
fn dynamic_allocating_cuts_page_reads() {
    let fx = fixture();
    let mut s = SchedulingConfig::full();
    s.speculative = false;
    s.dynamic_allocating = false;
    let without = run(&fx, s);
    s.dynamic_allocating = true;
    let with = run(&fx, s);
    assert!(with.stats.page_reads < without.stats.page_reads);
    assert!(with.stats.page_buffer_hits > 0);
}

#[test]
fn speculation_trades_pages_for_latency() {
    let fx = fixture();
    let mut s = SchedulingConfig::full();
    s.speculative = false;
    let without = run(&fx, s);
    s.speculative = true;
    let with = run(&fx, s);
    assert!(with.stats.page_reads > without.stats.page_reads);
    assert!(with.total_ns <= without.total_ns);
    let hit_rate = with.speculation.hit_rate();
    assert!(
        hit_rate > 0.05 && hit_rate < 0.95,
        "hit rate {hit_rate} should be partial (paper: over half miss)"
    );
}

#[test]
fn whole_pipeline_is_deterministic() {
    let fx = fixture();
    let a = run(&fx, SchedulingConfig::full());
    let b = run(&fx, SchedulingConfig::full());
    assert_eq!(a, b);
}

/// Builds a serving engine over the scheduling fixture and submits every
/// fixture query at `arrival(i)`.
fn serve_fixture_run(
    fx: &Fixture,
    queries: &ndsearch::vector::Dataset,
    medoid: u32,
    serve: ServeConfig,
    arrival: impl Fn(usize) -> u64,
) -> ndsearch::serve::ServeReport {
    let prepared = Prepared::stage(
        &fx.config,
        &fx.graph,
        &fx.base,
        &ndsearch::anns::trace::BatchTrace::default(),
    );
    let mut engine = ServeEngine::new(&fx.config, serve, &prepared, &fx.base, &fx.graph);
    for (i, (_, q)) in queries.iter().enumerate() {
        engine.submit(QueryRequest::at(arrival(i), q.to_vec(), vec![medoid]));
    }
    engine.run_to_completion()
}

fn serve_setup() -> (Fixture, ndsearch::vector::Dataset, u32) {
    let fx = fixture();
    let (_, queries) = DatasetSpec::deep_scaled(900, 24).build_pair();
    let index = Vamana::build(&fx.base, VamanaParams::default());
    (fx, queries, index.medoid())
}

#[test]
fn batch_scheduler_is_deterministic_under_fixed_seed() {
    let (fx, queries, medoid) = serve_setup();
    let run = || {
        serve_fixture_run(
            &fx,
            &queries,
            medoid,
            ServeConfig {
                max_inflight: 6,
                ..ServeConfig::default()
            },
            |i| i as u64 * 2_500,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed + same arrivals must replay identically");
    assert_eq!(a.completed(), queries.len());
}

#[test]
fn batch_scheduler_preserves_per_query_recall() {
    // Interleaving N queries must return exactly the ids a sequential
    // run-to-completion beam search returns for each of them.
    let (fx, queries, medoid) = serve_setup();
    let serve = ServeConfig {
        max_inflight: 8,
        ..ServeConfig::default()
    };
    let report = serve_fixture_run(&fx, &queries, medoid, serve.clone(), |_| 0);
    let mut vs = VisitedSet::new(fx.base.len());
    for (i, (_, q)) in queries.iter().enumerate() {
        let mut want = beam_search(
            &fx.base,
            &fx.graph,
            q,
            &[medoid],
            serve.beam_width,
            serve.distance,
            &mut vs,
        )
        .found;
        want.truncate(serve.k);
        assert_eq!(
            report.outcomes[i].results, want,
            "query {i}: concurrent serving changed the answer"
        );
    }
}

#[test]
fn batch_scheduler_is_fair_under_oversubscription() {
    // 24 queries over 4 slots: everyone completes, nobody sits in flight
    // without progressing (at most one drain round), admission is FIFO.
    let (fx, queries, medoid) = serve_setup();
    let report = serve_fixture_run(
        &fx,
        &queries,
        medoid,
        ServeConfig {
            max_inflight: 4,
            ..ServeConfig::default()
        },
        |_| 0,
    );
    assert_eq!(report.peak_inflight, 4);
    let mut last_admitted = 0;
    for o in &report.outcomes {
        assert_eq!(o.state, SessionState::Completed, "query {} starved", o.id);
        assert!(o.hops > 0);
        assert!(
            o.rounds_inflight <= o.hops + 1,
            "query {} occupied {} rounds for {} hops",
            o.id,
            o.rounds_inflight,
            o.hops
        );
        assert!(
            o.admitted_ns >= last_admitted,
            "admission must be FIFO for same-instant arrivals"
        );
        last_admitted = o.admitted_ns;
    }
    // Oversubscription costs queueing delay: the last-admitted query
    // waited, the first did not.
    assert_eq!(report.outcomes[0].queue_wait_ns(), 0);
    assert!(report.outcomes.last().unwrap().queue_wait_ns() > 0);
}

#[test]
fn deadline_boundary_is_exact_at_completion_and_expiry() {
    // Pinned deadline semantics: a session is `Completed` iff its
    // completion instant is <= its deadline, and a deadline at or before
    // the current round start expires immediately — `deadline == now`
    // does not buy an extra round. Regression test for two former edge
    // cases: expiry was only checked at round *start* with a strict
    // `d < now`, so a session finishing late inside a round was reported
    // `Completed` and a `deadline == now` session survived one round.
    let (fx, queries, medoid) = serve_setup();
    let q = queries.vector(0).to_vec();
    let run_with = |deadline: Option<u64>| {
        let prepared = Prepared::stage(
            &fx.config,
            &fx.graph,
            &fx.base,
            &ndsearch::anns::trace::BatchTrace::default(),
        );
        let mut engine = ServeEngine::new(
            &fx.config,
            ServeConfig::default(),
            &prepared,
            &fx.base,
            &fx.graph,
        );
        let mut req = QueryRequest::at(1_000, q.clone(), vec![medoid]);
        req.deadline_ns = deadline;
        engine.submit(req);
        engine.run_to_completion()
    };
    let free = run_with(None);
    assert_eq!(free.outcomes[0].state, SessionState::Completed);
    let done = free.outcomes[0].completed_ns;
    assert!(done > 1_000);

    // Deadline exactly at the completion instant: still a completion.
    let exact = run_with(Some(done));
    assert_eq!(
        exact.outcomes[0].state,
        SessionState::Completed,
        "completing exactly at the deadline must count as met"
    );
    assert_eq!(exact.outcomes[0].completed_ns, done);

    // One nanosecond tighter: the final round now finishes past the
    // deadline, so the very same execution must be reported Expired.
    let late = run_with(Some(done - 1));
    assert_eq!(
        late.outcomes[0].state,
        SessionState::Expired,
        "finishing after the deadline must expire, even inside the final round"
    );

    // Deadline == arrival: expired at admission, before any hop runs.
    let instant = run_with(Some(1_000));
    assert_eq!(instant.outcomes[0].state, SessionState::Expired);
    assert_eq!(
        instant.outcomes[0].hops, 0,
        "deadline == now must not buy an extra round"
    );
}

/// Builds a serving engine with the given SLO policy and submits every
/// query with a per-query tenant and deadline.
fn serve_slo_run(
    fx: &Fixture,
    queries: &ndsearch::vector::Dataset,
    medoid: u32,
    serve: ServeConfig,
    submit: impl Fn(usize) -> (u32, Option<u64>),
) -> ServeReport {
    let prepared = Prepared::stage(
        &fx.config,
        &fx.graph,
        &fx.base,
        &ndsearch::anns::trace::BatchTrace::default(),
    );
    let mut engine = ServeEngine::new(&fx.config, serve, &prepared, &fx.base, &fx.graph);
    for (i, (_, q)) in queries.iter().enumerate() {
        let (tenant, deadline) = submit(i);
        let mut req = QueryRequest::at(0, q.to_vec(), vec![medoid]).tenant(tenant);
        req.deadline_ns = deadline;
        engine.submit(req);
    }
    engine.run_to_completion()
}

#[test]
fn shed_doomed_never_sheds_a_meetable_query() {
    // The documented shed estimator (`remaining hops × observed per-hop
    // round cost`, optimistic before any observation) can only shed a
    // query whose estimated finish misses its deadline. With deadlines
    // far beyond any estimate, ShedDoomed must shed nothing and the run
    // must be bit-identical to SloPolicy::None — same admissions, same
    // rounds, same outcomes.
    let (fx, queries, medoid) = serve_setup();
    let run_with = |slo: SloPolicy| {
        serve_slo_run(
            &fx,
            &queries,
            medoid,
            ServeConfig {
                max_inflight: 4,
                slo,
                ..ServeConfig::default()
            },
            |_| (0, Some(1_000_000_000_000)),
        )
    };
    let unshed = run_with(SloPolicy::None);
    let shed = run_with(SloPolicy::ShedDoomed { min_slack_ns: 0 });
    assert_eq!(shed.sheds(), 0, "meetable deadlines must never shed");
    assert_eq!(shed, unshed, "a shed-free run must match SloPolicy::None");
    assert_eq!(shed.completed(), queries.len());
    assert_eq!(shed.slo_attainment(), 1.0);
}

#[test]
fn tenant_fair_cap_is_never_exceeded_and_everyone_completes() {
    // 24 same-instant queries submitted grouped by tenant (tenant 0
    // first): FIFO admission hands the head tenant every slot, TenantFair
    // must bound each tenant's in-flight share in every round while
    // keeping the global slots fully used and completing everything.
    let (fx, queries, medoid) = serve_setup();
    let run_with = |slo: SloPolicy| {
        serve_slo_run(
            &fx,
            &queries,
            medoid,
            ServeConfig {
                max_inflight: 6,
                slo,
                ..ServeConfig::default()
            },
            |i| (i as u32 / 8, None),
        )
    };
    let peak = |r: &ServeReport, t: u32| {
        r.peak_tenant_inflight
            .iter()
            .find(|&&(id, _)| id == t)
            .map_or(0, |&(_, p)| p)
    };
    let unfair = run_with(SloPolicy::None);
    assert!(
        peak(&unfair, 0) > 2,
        "FIFO admission should let the head tenant hog slots (peak {})",
        peak(&unfair, 0)
    );
    let fair = run_with(SloPolicy::TenantFair {
        max_inflight_per_tenant: 2,
    });
    for t in 0..3u32 {
        let p = peak(&fair, t);
        assert!(p <= 2, "tenant {t} exceeded the cap: peak {p}");
        assert!(p > 0, "tenant {t} starved");
    }
    assert_eq!(
        fair.peak_inflight, 6,
        "the cap must not strand global slots"
    );
    assert_eq!(fair.completed(), queries.len());
    for o in &fair.outcomes {
        assert_eq!(o.state, SessionState::Completed, "query {} starved", o.id);
    }
}

#[test]
fn luncsr_stays_consistent_under_refresh_storm() {
    use ndsearch::flash::ftl::Ftl;
    use ndsearch::vector::rng::Pcg32;
    let fx = fixture();
    let prepared = Prepared::stage(&fx.config, &fx.graph, &fx.base, &fx.trace);
    let mut luncsr = prepared.luncsr.clone();
    let geom = *luncsr.mapping().geometry();
    let mut ftl = Ftl::new(geom, 99);
    let mut rng = Pcg32::seed_from_u64(17);
    for _ in 0..500 {
        let plane = rng.index(geom.total_planes() as usize) as u32;
        let block = rng.index(geom.blocks_per_plane as usize) as u32;
        for ev in ftl.refresh_block(plane, block) {
            luncsr.apply_refresh(&ev);
        }
    }
    assert!(luncsr.consistent_with_ftl(&ftl));
    // The engine can still replay traces against the refreshed layout.
    let refreshed = Prepared { luncsr, ..prepared };
    let r = NdsEngine::new(&fx.config).run(&refreshed);
    assert!(r.total_ns > 0);
}
