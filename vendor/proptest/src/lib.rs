//! Offline stand-in for the `proptest` property-testing framework. The
//! build environment for this repository has no network access, so the
//! workspace vendors the subset of the proptest API its tests use:
//!
//! * the [`proptest!`] macro wrapping `#[test]` functions whose arguments
//!   are drawn from strategies (`pat in strategy`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * [`arbitrary::any`] for primitive types,
//! * range strategies (`0u32..50`, `-100.0f32..100.0`, ...), tuple
//!   strategies, and [`collection::vec`] with fixed or ranged lengths.
//!
//! Each property runs [`test_runner::Config::default`] `cases` deterministic
//! random cases (seeded from the test name, overridable via
//! `PROPTEST_CASES`). Unlike the real crate there is **no shrinking**: a
//! failing case reports its case index and seed instead of a minimised
//! input. API shapes match the real crate, so swapping the registry package
//! back in is a one-line manifest change.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of type [`Strategy::Value`].
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy yielding a fixed value; handy in tests of the runner itself.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty integer range strategy {}..{}",
                        self.start,
                        self.end
                    );
                    let width = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % width;
                    (self.start as i128 + offset as i128) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer range strategy {}..={}", lo, hi);
                    let width = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % width;
                    (lo as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty float range strategy {}..{}",
                        self.start,
                        self.end
                    );
                    let unit = rng.next_f64() as $t;
                    // Rounding (f64→f32 and the fused arithmetic below) can
                    // land exactly on `end`; clamp to keep the range half-open.
                    let v = self.start + unit * (self.end - self.start);
                    v.min(self.end.next_down())
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// See [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec()`]: a fixed size or a `start..end` range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        start: usize,
        end_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                start: n,
                end_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range {}..{}", r.start, r.end);
            Self {
                start: r.start,
                end_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                start: *r.start(),
                end_exclusive: *r.end() + 1,
            }
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = (self.size.end_exclusive - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % width) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing a `Vec` whose elements are drawn from `element`
    /// and whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    /// Deterministic splitmix64 generator; quality is ample for test-case
    /// generation and it keeps the stand-in dependency-free.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// A failed property case; produced by the `prop_assert*` macros.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Runner configuration; mirrors the fields of the real crate this
    /// workspace relies on.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            Self { cases }
        }
    }

    fn name_seed(name: &str) -> u64 {
        // FNV-1a, so each property walks a distinct deterministic sequence.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Executes `body` for `config.cases` deterministic cases, panicking
    /// (like `#[test]` expects) on the first failure.
    pub fn run<F>(config: Config, name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = name_seed(name);
        for case in 0..config.cases {
            let seed = base.wrapping_add(u64::from(case));
            let mut rng = TestRng::seed_from_u64(seed);
            if let Err(e) = body(&mut rng) {
                panic!(
                    "proptest property `{name}` failed at case {case}/{} (seed {seed:#x}): {e}",
                    config.cases
                );
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(
                    $crate::test_runner::Config::default(),
                    stringify!($name),
                    |rng| {
                        $(let $parm = $crate::strategy::Strategy::generate(&($strategy), rng);)+
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn int_range_stays_in_bounds() {
        let mut rng = TestRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = (10u32..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let s = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut rng = TestRng::seed_from_u64(8);
        for _ in 0..1000 {
            let v = (-100.0f32..100.0).generate(&mut rng);
            assert!((-100.0..100.0).contains(&v));
        }
    }

    #[test]
    fn vec_respects_size_spec() {
        let mut rng = TestRng::seed_from_u64(9);
        for _ in 0..200 {
            let fixed = crate::collection::vec(0u8..10, 8).generate(&mut rng);
            assert_eq!(fixed.len(), 8);
            let ranged = crate::collection::vec(0u8..10, 1..5).generate(&mut rng);
            assert!((1..5).contains(&ranged.len()));
        }
    }

    #[test]
    fn runner_is_deterministic() {
        let mut first = Vec::new();
        crate::test_runner::run(crate::test_runner::Config { cases: 5 }, "det", |rng| {
            first.push(rng.next_u64());
            Ok(())
        });
        let mut second = Vec::new();
        crate::test_runner::run(crate::test_runner::Config { cases: 5 }, "det", |rng| {
            second.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "proptest property `boom` failed")]
    fn runner_reports_failures() {
        crate::test_runner::run(crate::test_runner::Config { cases: 3 }, "boom", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }

    proptest! {
        #[test]
        fn macro_end_to_end(
            mut v in crate::collection::vec(any::<i32>(), 0..50),
            (lo, hi) in (0u32..10, 10u32..20),
        ) {
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(lo < hi, "lo = {}, hi = {}", lo, hi);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(lo, hi);
        }
    }
}
