//! Offline stand-in for the `criterion` statistics-driven benchmark
//! harness. The build environment for this repository has no network
//! access, so the workspace vendors the subset of the criterion API its
//! benches use: [`Criterion`], [`Bencher::iter`]/[`Bencher::iter_batched`],
//! benchmark groups, and the [`criterion_group!`]/[`criterion_main!`]
//! macros.
//!
//! Measurement is deliberately simple — each routine is warmed up, then
//! timed over a fixed number of batches and reported as mean ns/iter on
//! stdout — but the API shapes (and therefore the bench sources) match the
//! real crate, so swapping the registry package back in is a one-line
//! manifest change.

use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` (the real crate forwards to
/// `std::hint::black_box` on recent toolchains, as do we).
pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// How batched inputs are sized; only the variants the workspace uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives a single benchmark routine.
pub struct Bencher {
    sample_size: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        }
    }

    /// Time `routine`, called back-to-back in samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = self.sample_size as u64;
    }

    /// Time `routine` over fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.iters = self.sample_size as u64;
    }

    /// Like [`Bencher::iter_batched`] but hands the routine `&mut I`.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, |mut input| routine(&mut input), _size);
    }

    fn report(&self, name: &str) {
        let per_iter = if self.iters == 0 {
            0.0
        } else {
            self.elapsed.as_nanos() as f64 / self.iters as f64
        };
        println!(
            "bench: {name:<40} {per_iter:>14.1} ns/iter ({} iters)",
            self.iters
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be at least 1");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, f);
        self
    }

    pub fn bench_with_input<F, I>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher::new(sample_size);
    f(&mut bencher);
    bencher.report(name);
}

/// The top-level harness handle passed to every benchmark function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// The real crate parses CLI flags here; the stand-in only needs to
    /// tolerate the ones `cargo bench` passes (e.g. `--bench`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be at least 1");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher::new(4);
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(b.iters, 4);
        assert_eq!(count, 4 + WARMUP_ITERS);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut b = Bencher::new(5);
        let mut setups = 0u32;
        b.iter_batched(
            || {
                setups += 1;
                vec![3u8, 1, 2]
            },
            |mut v| {
                v.sort_unstable();
                v
            },
            BatchSize::SmallInput,
        );
        // One untimed warmup batch plus one per sample.
        assert_eq!(setups, 6);
        assert_eq!(b.iters, 5);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
