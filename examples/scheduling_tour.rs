//! A guided tour of NDSEARCH's two-level scheduling (§VI): what each knob
//! does to page accesses, LUN behaviour and latency, using one workload
//! and the Fig. 16 ablation ladder.
//!
//! Run with: `cargo run --release --example scheduling_tour`

use ndsearch::anns::index::{GraphAnnsIndex, SearchParams};
use ndsearch::anns::vamana::{Vamana, VamanaParams};
use ndsearch::core::config::{NdsConfig, SchedulingConfig};
use ndsearch::core::engine::NdsEngine;
use ndsearch::core::pipeline::Prepared;
use ndsearch::graph::reorder::bandwidth;
use ndsearch::vector::synthetic::DatasetSpec;
use ndsearch::vector::DistanceKind;

fn main() {
    let (base, queries) = DatasetSpec::sift_scaled(4000, 512).build_pair();
    let index = Vamana::build(&base, VamanaParams::default());
    let out = index.search_batch(
        &base,
        &queries,
        &SearchParams::new(10, 64, DistanceKind::L2),
    );
    let base_config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());

    // Static scheduling in isolation: the bandwidth objective β(G, f).
    println!("== Static scheduling: vertex bandwidth β(G, f) (Eq. 1) ==");
    let g = index.base_graph();
    let beta_orig = bandwidth(g);
    let perm = ndsearch::graph::reorder::ReorderMethod::DegreeAscendingBfs.permutation(g, 0);
    let beta_ours = bandwidth(&g.relabel(&perm));
    println!("construction order : β = {beta_orig:.1}");
    println!(
        "degree-asc BFS     : β = {beta_ours:.1}  ({:.1}% lower)",
        100.0 * (1.0 - beta_ours / beta_orig)
    );

    // The full ablation ladder.
    println!("\n== Ablation ladder (Fig. 16) ==");
    println!(
        "{:<12} {:>9} {:>18} {:>12} {:>10}",
        "config", "kQPS", "page access ratio", "page reads", "spec hit%"
    );
    for (label, sched) in SchedulingConfig::ablation_ladder() {
        let config = NdsConfig {
            scheduling: sched,
            ..base_config.clone()
        };
        let prepared = Prepared::stage(&config, index.base_graph(), &base, &out.trace);
        let r = NdsEngine::new(&config).run(&prepared);
        println!(
            "{label:<12} {:>9.1} {:>18.3} {:>12} {:>10.1}",
            r.qps() / 1e3,
            r.page_access_ratio(),
            r.stats.page_reads,
            100.0 * r.speculation.hit_rate(),
        );
    }
    println!("\nReordering (re) packs graph neighbors into shared pages;");
    println!("multi-plane mapping (mp) lets both planes of a LUN sense at once;");
    println!("dynamic allocating (da) shares page loads across queries;");
    println!("speculative searching (sp) trades extra page reads for overlap.");
}
