//! Recommendation-system serving — another of the paper's motivating
//! domains: item retrieval for a recommender, spacev-style text
//! descriptors, large query batches, strict tail-latency budget.
//!
//! The example sweeps batch size (the knob of Fig. 19), compares NDSEARCH
//! against the chip-level in-storage accelerator (DS-cp) and shows how the
//! LUN-level design needs large batches to shine — and where the resource
//! cap splits batches.
//!
//! Run with: `cargo run --release --example recommendation_serving`

use ndsearch::anns::hnsw::{Hnsw, HnswParams};
use ndsearch::anns::index::{GraphAnnsIndex, SearchParams};
use ndsearch::baselines::{DeepStorePlatform, Platform, Scenario};
use ndsearch::core::config::NdsConfig;
use ndsearch::core::engine::NdsEngine;
use ndsearch::core::pipeline::Prepared;
use ndsearch::vector::synthetic::{BenchmarkId, DatasetSpec};
use ndsearch::vector::DistanceKind;

fn main() {
    let n = 5000;
    let spec = DatasetSpec::spacev_scaled(n, 4096);
    let (items, users) = spec.build_pair();
    println!(
        "item corpus: {} items x {}-d (spacev-1b model, i8 elements)",
        items.len(),
        items.dim()
    );
    let index = Hnsw::build(&items, HnswParams::default());
    let params = SearchParams::new(10, 64, DistanceKind::L2);
    let config = NdsConfig::scaled_for(items.len(), items.stored_vector_bytes());

    println!("\nbatch  NDSEARCH-kQPS  DS-cp-kQPS  speedup  sub-batches  spec-hit%");
    for batch in [256usize, 1024, 2048, 4096] {
        let user_batch = ndsearch::vector::Dataset::from_flat(
            users.dim(),
            users.as_flat()[..batch * users.dim()].to_vec(),
        );
        let out = index.search_batch(&items, &user_batch, &params);

        let scenario = Scenario {
            benchmark: BenchmarkId::SpaceV1B,
            base: &items,
            graph: index.base_graph(),
            trace: &out.trace,
            config: &config,
            k: 10,
        };
        let dscp = DeepStorePlatform::chip_level().report(&scenario);
        let prepared = Prepared::stage(&config, index.base_graph(), &items, &out.trace);
        let nds = NdsEngine::new(&config).run(&prepared);
        println!(
            "{batch:>5} {:>14.1} {:>11.1} {:>8.2} {:>12} {:>10.1}",
            nds.qps() / 1e3,
            dscp.qps() / 1e3,
            nds.qps() / dscp.qps(),
            nds.sub_batches,
            100.0 * nds.speculation.hit_rate(),
        );
    }
    println!("\nSmall batches starve the 256 LUN accelerators; the advantage");
    println!("peaks once every LUN has work, and batches beyond the resource");
    println!("cap are split into sub-batches (Fig. 19's shape).");
}
