//! Serving an open stream of concurrent queries on the SearSSD model:
//! submit sessions with staggered arrivals and deadlines, poll them
//! mid-flight, and compare interleaved serving against one-at-a-time
//! execution of the very same queries.
//!
//! Run with: `cargo run --release --example serving_concurrent`

use ndsearch::anns::index::GraphAnnsIndex;
use ndsearch::anns::trace::BatchTrace;
use ndsearch::anns::vamana::{Vamana, VamanaParams};
use ndsearch::core::config::NdsConfig;
use ndsearch::core::pipeline::Prepared;
use ndsearch::serve::{QueryRequest, ServeConfig, ServeEngine, ServeReport, SessionState};
use ndsearch::vector::rng::Pcg32;
use ndsearch::vector::synthetic::DatasetSpec;

fn main() {
    // 1. Build the corpus and the ANNS graph, and stage it on flash with
    //    full static scheduling (reorder + multi-plane placement).
    let (base, queries) = DatasetSpec::sift_scaled(3000, 48).build_pair();
    let index = Vamana::build(&base, VamanaParams::default());
    let mut config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
    config.ecc.hard_decision_failure_prob = 0.0;
    let prepared = Prepared::stage(&config, index.base_graph(), &base, &BatchTrace::default());

    // 2. Submit 48 sessions with Poisson arrivals over ~2 ms; give the
    //    last one a deliberately impossible deadline to show expiry.
    let serve = ServeConfig {
        max_inflight: 16,
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(&config, serve, &prepared, &base, index.base_graph());
    let mut rng = Pcg32::seed_from_u64(7);
    let mut t = 0u64;
    for (i, (_, q)) in queries.iter().enumerate() {
        t += (rng.next_f64() * 80_000.0) as u64; // ~40 us mean spacing
        let mut req = QueryRequest::at(t, q.to_vec(), vec![index.medoid()]);
        if i == queries.len() - 1 {
            req.deadline_ns = Some(t + 1); // will expire with partial top-k
        }
        engine.submit(req);
    }

    // 3. Drive a few rounds by hand and poll the in-flight mix.
    println!("== Mid-flight session states ==");
    for round in 1..=4 {
        engine.step_round();
        let mut counts = [0usize; 4];
        for id in 0..queries.len() {
            match engine.poll(id) {
                SessionState::Pending => counts[0] += 1,
                SessionState::Queued => counts[1] += 1,
                SessionState::Running => counts[2] += 1,
                _ => counts[3] += 1,
            }
        }
        println!(
            "round {round}: t = {:>9} ns  pending {:>2}  queued {:>2}  running {:>2}  done {:>2}",
            engine.now_ns(),
            counts[0],
            counts[1],
            counts[2],
            counts[3]
        );
    }

    // 4. Drain everything and report.
    let report = engine.run_to_completion();
    summarize("Interleaved (16 in flight)", &report);

    // 5. The same stream served one query at a time: identical results,
    //    far lower throughput — the win of keeping every channel busy.
    let serial = ServeConfig {
        max_inflight: 1,
        ..ServeConfig::default()
    };
    let mut one_at_a_time = ServeEngine::new(&config, serial, &prepared, &base, index.base_graph());
    for (_, q) in queries.iter() {
        one_at_a_time.submit(QueryRequest::at(0, q.to_vec(), vec![index.medoid()]));
    }
    let serial_report = one_at_a_time.run_to_completion();
    summarize("One at a time", &serial_report);
    println!(
        "\nInterleaving speedup: {:.1}x QPS",
        report.qps() / serial_report.qps()
    );

    let sample = &report.outcomes[0];
    println!(
        "\nSession 0: {} hops over {} rounds, waited {} ns in queue, top hit id {}",
        sample.hops,
        sample.rounds_inflight,
        sample.queue_wait_ns(),
        sample.results[0].id
    );
}

fn summarize(label: &str, r: &ServeReport) {
    let lat = r.latency();
    println!(
        "\n== {label} ==\n\
         completed {:>3}  expired {}  rejected {}  rounds {}  peak in-flight {}\n\
         QPS {:>10.0}  p50 {:>8} ns  p99 {:>8} ns  LUN coverage {:.2}",
        r.completed(),
        r.expired(),
        r.rejected(),
        r.rounds,
        r.peak_inflight,
        r.qps(),
        lat.p50_ns,
        lat.p99_ns,
        r.lun_coverage
    );
}
