//! RAG retrieval scenario — the paper's opening motivation: ANNS as the
//! retrieval stage of retrieval-augmented generation for LLMs.
//!
//! A corpus of deep-1b-style 96-d passage embeddings is indexed with
//! DiskANN (the algorithm actually used for SSD-resident RAG corpora).
//! Prompt batches of different sizes retrieve top-5 contexts; the example
//! compares the CPU+SSD serving stack against NDSEARCH and reports the
//! retrieval-latency budget each leaves for the LLM.
//!
//! Run with: `cargo run --release --example rag_retrieval`

use ndsearch::anns::index::{GraphAnnsIndex, SearchParams};
use ndsearch::anns::vamana::{Vamana, VamanaParams};
use ndsearch::baselines::{CpuPlatform, GpuPlatform, Platform, Scenario};
use ndsearch::core::config::NdsConfig;
use ndsearch::core::engine::NdsEngine;
use ndsearch::core::pipeline::Prepared;
use ndsearch::vector::synthetic::{BenchmarkId, DatasetSpec};
use ndsearch::vector::DistanceKind;

fn main() {
    // Passage-embedding corpus (deep-1b model: 96-d float descriptors).
    let n = 5000;
    let spec = DatasetSpec::deep_scaled(n, 512);
    let (corpus, prompts) = spec.build_pair();
    println!(
        "RAG corpus: {} passages x {}-d embeddings",
        corpus.len(),
        corpus.dim()
    );

    // DiskANN index — the standard choice for SSD-resident corpora.
    let index = Vamana::build(&corpus, VamanaParams::default());
    let params = SearchParams::new(5, 64, DistanceKind::L2);

    println!("\nbatch  platform   retrieve-ms   kQPS   ms-left-of-100ms-SLA");
    for batch in [64usize, 256, 512] {
        let prompt_batch = ndsearch::vector::Dataset::from_flat(
            prompts.dim(),
            prompts.as_flat()[..batch * prompts.dim()].to_vec(),
        );
        let out = index.search_batch(&corpus, &prompt_batch, &params);
        let config = NdsConfig::scaled_for(corpus.len(), corpus.stored_vector_bytes());

        // CPU+SSD serving stack.
        let scenario = Scenario {
            benchmark: BenchmarkId::Deep1B,
            base: &corpus,
            graph: index.base_graph(),
            trace: &out.trace,
            config: &config,
            k: 5,
        };
        let cpu = CpuPlatform::paper_default().report(&scenario);
        let gpu = GpuPlatform::paper_default().report(&scenario);

        // NDSEARCH.
        let prepared = Prepared::stage(&config, index.base_graph(), &corpus, &out.trace);
        let nds = NdsEngine::new(&config).run(&prepared);

        for (name, ms, qps) in [
            ("CPU", cpu.total_ns as f64 / 1e6, cpu.qps()),
            ("GPU", gpu.total_ns as f64 / 1e6, gpu.qps()),
            ("NDSEARCH", nds.total_ns as f64 / 1e6, nds.qps()),
        ] {
            // Whole-batch retrieval latency eats into a 100 ms per-request
            // SLA (prompts in one batch share the retrieval wait).
            let slack = 100.0 - ms;
            println!(
                "{batch:>5}  {name:<9} {ms:>11.2} {:>7.1} {slack:>20.1}",
                qps / 1e3
            );
        }
    }
    println!("\nThe retrieval stage must leave most of the latency SLA for the");
    println!("LLM forward pass; near-data retrieval keeps it negligible.");
}
