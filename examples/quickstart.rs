//! Quickstart: build a dataset, construct an HNSW graph, record search
//! traces, stage them on the simulated SearSSD and run the NDSEARCH
//! engine.
//!
//! Run with: `cargo run --release --example quickstart`

use ndsearch::anns::hnsw::{Hnsw, HnswParams};
use ndsearch::anns::index::{GraphAnnsIndex, SearchParams};
use ndsearch::core::config::NdsConfig;
use ndsearch::core::engine::NdsEngine;
use ndsearch::core::pipeline::Prepared;
use ndsearch::vector::recall::{ground_truth, recall_at_k};
use ndsearch::vector::synthetic::DatasetSpec;
use ndsearch::vector::DistanceKind;

fn main() {
    // 1. A sift-like synthetic dataset: 128-d byte vectors, clustered.
    let spec = DatasetSpec::sift_scaled(4000, 256);
    let (base, queries) = spec.build_pair();
    println!(
        "dataset: {} x {}-d ({} benchmark model)",
        base.len(),
        base.dim(),
        spec.benchmark
    );

    // 2. Build the HNSW index and run the real search phase.
    let index = Hnsw::build(&base, HnswParams::default());
    let params = SearchParams::new(10, 80, DistanceKind::L2);
    let out = index.search_batch(&base, &queries, &params);

    // 3. Verify quality against brute force.
    let gt = ground_truth(&base, &queries, 10, DistanceKind::L2);
    let recall = recall_at_k(&gt, &out.id_lists(), 10);
    println!("recall@10 = {recall:.3}");
    println!(
        "trace: {} visited vertices over {} queries ({:.0} per query)",
        out.trace.total_visited(),
        out.trace.len(),
        out.trace.mean_trace_len()
    );

    // 4. Stage on SearSSD (reorder + multi-plane placement + LUNCSR) and
    //    run the near-data processing engine.
    let config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
    let prepared = Prepared::stage(&config, index.base_graph(), &base, &out.trace);
    let report = NdsEngine::new(&config).run(&prepared);

    println!("\n== NDSEARCH report ==");
    println!("batch latency    : {:.3} ms", report.total_ns as f64 / 1e6);
    println!("throughput       : {:.1} kQPS", report.qps() / 1e3);
    println!("page access ratio: {:.3}", report.page_access_ratio());
    println!("LUN coverage     : {:.1} %", 100.0 * report.lun_coverage);
    println!(
        "speculation hits : {:.1} %",
        100.0 * report.speculation.hit_rate()
    );
    println!("\nlatency breakdown:");
    for (label, frac) in report.breakdown.fractions() {
        println!("  {label:<16} {:5.1} %", 100.0 * frac);
    }
}
